"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands run the paper's experiments at a chosen scale and print the
paper-vs-measured tables; ``--export DIR`` additionally writes the raw
figure data as CSV.

Commands
--------
``campaign``   the Fig. 2 crawl campaign (Figs. 3-5, 8, 12, 13, Table I)
``sync``       the Fig. 1 contrast (2019-like vs 2020-like churn)
``chaos``      sync-% degradation vs. fault intensity (``repro.faults``)
``attack``     sync-% degradation vs. attacker count (``repro.adversary``)
``variants``   the protocol-variant lab: policy variant x churn x fault x
               fidelity cross-product (``repro.bitcoin.policy``)
``relay``      the Fig. 10/11 relay-delay measurement
``conn``       the Fig. 6/7 connection experiments
``store``      inspect the run store (``ls`` / ``show`` / ``gc`` / ``diff``)
``serve``      run the campaign service over a run store (``repro.serve``)
``lint``       determinism & checkpoint-safety static analysis

``campaign --store DIR`` checkpoints the run into a content-addressed
store after every snapshot; an interrupted run resumes from its last
checkpoint (``--resume RUN_ID`` to be explicit) and a completed run with
the same config is a cache hit.

``--faults plan.json`` (on ``campaign``, ``sync``, and ``chaos``)
compiles a deterministic fault plan onto every run; ``--seed-timeout``
and ``--retries`` tune the supervised runner that multi-seed sweeps
execute under.

``--profile [OUT]`` (same three commands) runs the whole command under
cProfile and writes the hotspot ranking to ``OUT.txt``/``OUT.json``
(see ``repro.perf.profiler``) — the first step of any performance
investigation (docs/architecture.md, "The hot path").
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import Any, List, Optional

import numpy as np

from . import core
from .bitcoin import NodeConfig
from .core import export as export_mod
from .core.variant_experiments import DEFAULT_CHURN_LEVELS, DEFAULT_VARIANTS
from .core.reports import comparison_table, format_table
from .netmodel import (
    LongitudinalConfig,
    LongitudinalScenario,
    ProtocolConfig,
    ProtocolScenario,
    calibration as cal,
)
from .units import DAYS, HOURS


def _warn_truncated(label: str, indices_or_seeds) -> None:
    print(
        f"WARNING: {label} truncated at {indices_or_seeds} — the affected "
        f"measurements are lower bounds, not full crawls"
    )


def _load_fault_plan(args: argparse.Namespace):
    """The FaultPlan named by ``--faults``, or None."""
    path = getattr(args, "faults", None)
    if path is None:
        return None
    from .faults import FaultPlan

    plan = FaultPlan.from_file(path)
    print(f"fault plan: {len(plan)} fault(s) loaded from {path}")
    return plan


def _supervisor_config(args: argparse.Namespace):
    """A SupervisorConfig from ``--seed-timeout``/``--retries``, or None."""
    timeout = getattr(args, "seed_timeout", None)
    retries = getattr(args, "retries", None)
    if timeout is None and retries is None:
        return None
    config = core.SupervisorConfig()
    if timeout is not None:
        config.timeout = timeout
    if retries is not None:
        config.retries = retries
    return config


def _report_supervision(label: str, sweep) -> None:
    """Print the sweep's partial-result bookkeeping, when any."""
    if sweep.retried_seeds:
        print(
            f"NOTE: {label} seeds {sweep.retried_seeds} needed retries "
            f"(crashed or hung workers) but completed"
        )
    if sweep.failed_seeds:
        print(
            f"WARNING: {label} seeds {sweep.failed_seeds} failed permanently "
            f"— pooled statistics cover the {len(sweep.seeds)} completed "
            f"seed(s) only"
        )


def _cmd_campaign_sweep(args: argparse.Namespace) -> int:
    base = LongitudinalConfig(
        scale=args.scale, snapshots=args.snapshots, seed=args.seed,
        fidelity=args.fidelity, engine=args.engine,
        faults=_load_fault_plan(args),
    )
    seeds = core.seed_range(args.seed, args.seeds)
    print(
        f"campaign sweep: scale={args.scale} snapshots={args.snapshots} "
        f"seeds={seeds} workers={args.workers or 'auto'}"
        + (f" store={args.store}" if args.store else "")
    )
    sweep = core.run_campaign_sweep(
        base, seeds, workers=args.workers, store=args.store,
        supervisor=_supervisor_config(args),
    )
    _report_supervision("campaign", sweep)
    if sweep.truncated:
        _warn_truncated("campaigns for seeds", sweep.truncated_seeds)
    s = args.scale
    mean = sweep.mean_over_seeds
    print(
        comparison_table(
            [
                ("unreachable / snapshot", cal.UNREACHABLE_PER_SNAPSHOT * s,
                 mean(lambda r: float(np.mean(r.fig4_series()["per_snapshot"])))),
                ("cumulative unreachable", cal.CUMULATIVE_UNREACHABLE * s,
                 mean(lambda r: r.fig4_series()["cumulative"][-1])),
                ("responsive / snapshot", cal.RESPONSIVE_PER_SNAPSHOT * s,
                 mean(lambda r: float(np.mean(r.fig5_series()["per_snapshot"])))),
                ("ADDR reachable share", cal.ADDR_REACHABLE_SHARE,
                 mean(lambda r: r.mean_addr_reachable_share())),
                ("daily departures", cal.DAILY_CHURN_NODES * s,
                 mean(lambda r: r.churn_stats().mean_daily_departures(
                     r.churn_matrix().snapshot_interval))),
                ("mean lifetime (days)", cal.MEAN_NODE_LIFETIME_DAYS,
                 mean(lambda r: r.churn_stats().mean_lifetime / DAYS)),
            ],
            title=f"Campaign, mean over {len(seeds)} seeds",
        )
    )
    print(
        format_table(
            ("seed", "cumulative unreachable", "responsive/snapshot"),
            [
                (seed,
                 len(result.cumulative_unreachable),
                 round(float(np.mean(result.fig5_series()["per_snapshot"])), 1))
                for seed, result in zip(sweep.seeds, sweep.per_seed)
            ],
        )
    )
    if args.export:
        out = Path(args.export)
        for seed, result in zip(sweep.seeds, sweep.per_seed):
            export_mod.export_campaign_series(
                result, out / f"seed{seed}" / "campaign_series.csv"
            )
        print(f"exported per-seed CSVs to {out}/seed<N>/")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.seeds > 1:
        return _cmd_campaign_sweep(args)
    config = LongitudinalConfig(
        scale=args.scale, snapshots=args.snapshots, seed=args.seed,
        fidelity=args.fidelity, engine=args.engine,
        faults=_load_fault_plan(args),
    )
    if args.store is not None or args.resume is not None:
        from .store import default_store_root, run_stored_campaign

        root = args.store if args.store is not None else default_store_root()
        stored = run_stored_campaign(root, config, resume=args.resume)
        provenance = (
            "cached" if stored.cached
            else f"resumed from snapshot {stored.resumed_from}"
            if stored.resumed_from is not None
            else "fresh run"
        )
        print(
            f"campaign: run {stored.manifest.run_id} [{provenance}] "
            f"engine={stored.manifest.engine} store={root}"
        )
        result = stored.result
        # The printed tables need the deterministic address universe the
        # campaign ran against; rebuilding the scenario from the config
        # recreates it without simulating anything.
        scenario = LongitudinalScenario(config)
    else:
        scenario = LongitudinalScenario(config)
        runner = core.CampaignRunner(scenario)
        print(
            f"campaign: scale={args.scale} snapshots={args.snapshots} "
            f"population={scenario.population.summary()}"
        )
        result = runner.run()
    if result.truncated:
        _warn_truncated("snapshots", result.truncated_snapshots)
    s = args.scale
    fig4 = result.fig4_series()
    fig5 = result.fig5_series()
    stats = result.churn_stats()
    interval = result.churn_matrix().snapshot_interval
    detection = result.merged_detection(scenario.universe.asn_of)
    print(
        comparison_table(
            [
                ("unreachable / snapshot", cal.UNREACHABLE_PER_SNAPSHOT * s,
                 float(np.mean(fig4["per_snapshot"]))),
                ("cumulative unreachable", cal.CUMULATIVE_UNREACHABLE * s,
                 fig4["cumulative"][-1]),
                ("responsive / snapshot", cal.RESPONSIVE_PER_SNAPSHOT * s,
                 float(np.mean(fig5["per_snapshot"]))),
                ("ADDR reachable share", cal.ADDR_REACHABLE_SHARE,
                 result.mean_addr_reachable_share()),
                ("flooders detected", max(1, round(cal.MALICIOUS_NODE_COUNT * s)),
                 detection.count),
                ("always-on nodes", cal.ALWAYS_ON_NODES * s, stats.always_on),
                ("daily departures", cal.DAILY_CHURN_NODES * s,
                 stats.mean_daily_departures(interval)),
                ("mean lifetime (days)", cal.MEAN_NODE_LIFETIME_DAYS,
                 stats.mean_lifetime / DAYS),
            ],
            title="Campaign (paper values scaled where counts)",
        )
    )
    from .core.figures import dual_series, presence_matrix

    print()
    print("Fig. 4 (unreachable addresses per snapshot / cumulative):")
    print(dual_series(fig4["per_snapshot"], fig4["cumulative"]))
    print()
    print("Fig. 12 (presence matrix, downsampled):")
    print(presence_matrix(result.churn_matrix().matrix, max_rows=16, max_cols=60))
    if args.export:
        out = Path(args.export)
        export_mod.export_campaign_series(result, out / "campaign_series.csv")
        export_mod.export_churn(stats, out / "daily_churn.csv")
        export_mod.export_lifetimes(stats, out / "lifetimes.csv")
        export_mod.export_detection(detection, out / "flooders.csv")
        for name, report in result.hosting_reports(
            scenario.universe.asn_of
        ).items():
            export_mod.export_hosting(report, out / f"hosting_{name}.csv")
        print(f"exported CSVs to {out}/")
    return 0


def _cmd_sync(args: argparse.Namespace) -> int:
    base = core.SyncCampaignConfig(
        n_reachable=args.nodes,
        fidelity=args.fidelity,
        duration=args.hours * HOURS,
        seed=args.seed,
        faults=_load_fault_plan(args),
    )
    if args.seeds > 1:
        seeds = core.seed_range(args.seed, args.seeds)
        print(
            f"sync: nodes={args.nodes} duration={args.hours}h — running "
            f"2019 and 2020 churn levels over seeds={seeds} "
            f"(workers={args.workers or 'auto'})..."
        )
        results = core.run_2019_vs_2020_sweep(
            base, seeds=seeds, workers=args.workers,
            supervisor=_supervisor_config(args),
        )
        for label, sweep in results.items():
            _report_supervision(f"sync {label!r}", sweep)
    else:
        print(
            f"sync: nodes={args.nodes} duration={args.hours}h — running 2019 "
            f"and 2020 churn levels..."
        )
        results = core.run_2019_vs_2020(base)
    r2019, r2020 = results["2019"], results["2020"]
    for label, result in results.items():
        if result.truncated:
            _warn_truncated(f"sync campaign {label!r}", getattr(
                result, "truncated_seeds", "the event cap"
            ))
    print(
        comparison_table(
            [
                ("mean sync 2019 (%)", cal.SYNC_MEAN_2019, r2019.mean),
                ("mean sync 2020 (%)", cal.SYNC_MEAN_2020, r2020.mean),
                ("sync departures/10min 2019", cal.SYNC_DEPARTURES_2019,
                 r2019.sync_departures_per_10min),
                ("sync departures/10min 2020", cal.SYNC_DEPARTURES_2020,
                 r2020.sync_departures_per_10min),
            ],
            title="Fig. 1 / §IV-D",
        )
    )
    from .core.figures import density_overlay

    print()
    print("Fig. 1 kernel densities (x: 0..100% synchronized):")
    print(
        density_overlay(
            {label: result.density() for label, result in results.items()}
        )
    )
    if args.export:
        out = Path(args.export)
        for label, result in results.items():
            export_mod.export_sync_samples(
                result, out / f"sync_samples_{label}.csv", label=label
            )
            export_mod.export_density(
                result.density(), out / f"sync_kde_{label}.csv"
            )
        print(f"exported CSVs to {out}/")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import FaultPlan

    plan = FaultPlan.from_file(args.faults)
    intensities = [float(part) for part in args.intensities.split(",")]
    base = core.SyncCampaignConfig(
        n_reachable=args.nodes,
        fidelity=args.fidelity,
        duration=args.hours * HOURS,
        seed=args.seed,
    )
    seeds = core.seed_range(args.seed, args.seeds)
    print(
        f"chaos: nodes={args.nodes} duration={args.hours}h plan={args.faults} "
        f"({len(plan)} fault(s)) intensities={intensities} seeds={seeds} "
        f"workers={args.workers or 'auto'}..."
    )
    result = core.run_sync_under_faults(
        plan,
        base,
        intensities=intensities,
        seeds=seeds,
        workers=args.workers,
        supervisor=_supervisor_config(args),
    )
    for level in result.levels:
        _report_supervision(f"intensity {level.intensity}", level.sweep)
    rows = []
    for row in result.degradation_table():
        delta = row["delta_vs_baseline"]
        rows.append(
            (
                row["intensity"],
                round(row["mean_sync"], 2),
                round(row["median_sync"], 2),
                "-" if delta is None else round(delta, 2),
                len(row["failed_seeds"]),
                len(row["retried_seeds"]),
            )
        )
    print(
        format_table(
            ("intensity", "mean sync %", "median sync %",
             "delta vs baseline", "failed", "retried"),
            rows,
        )
    )
    print()
    print("injector totals per intensity level:")
    for level in result.levels:
        stats = level.fault_stats
        nonzero = {k: v for k, v in stats.items() if v}
        print(f"  {level.intensity}: {nonzero if nonzero else '(no faults fired)'}")
    if args.export:
        out = Path(args.export)
        out.mkdir(parents=True, exist_ok=True)
        with open(out / "chaos_degradation.json", "w", encoding="utf-8") as fh:
            json.dump(result.degradation_table(), fh, indent=2, sort_keys=True)
        for level in result.levels:
            export_mod.export_sync_samples(
                level.sweep,
                out / f"sync_samples_intensity_{level.intensity}.csv",
                label=f"intensity={level.intensity}",
            )
        print(f"exported degradation table and samples to {out}/")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from .adversary import AttackPlan

    plan = AttackPlan.from_file(args.plan)
    counts = [int(part) for part in args.counts.split(",")]
    base = core.SyncCampaignConfig(
        n_reachable=args.nodes,
        fidelity=args.fidelity,
        duration=args.hours * HOURS,
        seed=args.seed,
    )
    seeds = core.seed_range(args.seed, args.seeds)
    print(
        f"attack: nodes={args.nodes} duration={args.hours}h plan={args.plan} "
        f"({len(plan)} cohort(s)) counts={counts} seeds={seeds} "
        f"workers={args.workers or 'auto'}..."
    )
    supervisor = _supervisor_config(args)
    if args.store:
        stored = core.run_stored_attack_sweep(
            args.store,
            plan,
            base,
            counts=counts,
            seeds=seeds,
            workers=args.workers,
            supervisor=supervisor,
        )
        result = stored.result
        if stored.cached:
            print(
                f"cache hit: run {stored.manifest.run_id} is complete — "
                f"returning the stored result (no simulation)"
            )
        elif stored.resumed_from is not None:
            print(
                f"resumed run {stored.manifest.run_id} from level "
                f"{stored.resumed_from}/{len(counts)}"
            )
        else:
            print(f"stored as run {stored.manifest.run_id}")
    else:
        result = core.run_attack_sweep(
            plan,
            base,
            counts=counts,
            seeds=seeds,
            workers=args.workers,
            supervisor=supervisor,
        )
    for level in result.levels:
        _report_supervision(f"attackers={level.count}", level.sweep)
    rows = []
    for row in result.degradation_table():
        delta = row["delta_vs_baseline"]
        rows.append(
            (
                row["attackers"],
                round(row["mean_sync"], 2),
                round(row["median_sync"], 2),
                "-" if delta is None else round(delta, 2),
                len(row["failed_seeds"]),
                len(row["retried_seeds"]),
            )
        )
    print(
        format_table(
            ("attackers", "mean sync %", "median sync %",
             "delta vs baseline", "failed", "retried"),
            rows,
        )
    )
    print()
    print("attacker totals per count level:")
    for level in result.levels:
        stats = level.attack_stats
        nonzero = {k: v for k, v in stats.items() if v}
        print(f"  {level.count}: {nonzero if nonzero else '(no attack)'}")
    if args.mitigations:
        print()
        print(
            f"mitigations: rerunning the full attack under the "
            f"{args.mitigations!r} policy variant..."
        )
        comparison = core.compare_mitigations(
            plan, base, policies=args.mitigations, seeds=seeds,
            workers=args.workers, supervisor=supervisor,
        )
        mrows = [
            (
                row["condition"],
                round(row["mean_sync"], 2),
                round(row["median_sync"], 2),
                round(row["delta_vs_clean"], 2),
            )
            for row in comparison.table()
        ]
        print(
            format_table(
                ("condition", "mean sync %", "median sync %",
                 "delta vs clean"),
                mrows,
            )
        )
        print(
            f"hardening recovered {comparison.recovered:+.2f} "
            f"sync percentage points"
        )
    if args.export:
        out = Path(args.export)
        out.mkdir(parents=True, exist_ok=True)
        with open(out / "attack_degradation.json", "w", encoding="utf-8") as fh:
            json.dump(result.degradation_table(), fh, indent=2, sort_keys=True)
        for level in result.levels:
            export_mod.export_sync_samples(
                level.sweep,
                out / f"sync_samples_attackers_{level.count}.csv",
                label=f"attackers={level.count}",
            )
        print(f"exported degradation table and samples to {out}/")
    return 0


def _cmd_variants(args: argparse.Namespace) -> int:
    variants = [part.strip() for part in args.variants.split(",") if part.strip()]
    churn_levels = [float(part) for part in args.churn.split(",")]
    fidelities = [
        part.strip() for part in args.fidelities.split(",") if part.strip()
    ]
    fault_plans: List[Any] = [None]
    if args.faults:
        from .faults import FaultPlan

        fault_plan = FaultPlan.from_file(args.faults)
        fault_plans = [None, fault_plan]
        print(
            f"fault plan: {len(fault_plan)} fault(s) loaded from "
            f"{args.faults} (matrix runs fault-free + plan)"
        )
    if args.resume and not args.store:
        print("error: --resume requires --store", file=sys.stderr)
        return 2
    base = core.SyncCampaignConfig(
        n_reachable=args.nodes,
        duration=args.hours * HOURS,
        seed=args.seed,
    )
    seeds = core.seed_range(args.seed, args.seeds)
    n_cells = (
        len(variants) * len(churn_levels) * len(fault_plans) * len(fidelities)
    )
    print(
        f"variants: {variants} x churn={churn_levels} x "
        f"{len(fault_plans)} fault plan(s) x fidelities={fidelities} "
        f"({n_cells} cells, seeds={seeds}, workers={args.workers or 'auto'})..."
    )
    supervisor = _supervisor_config(args)
    if args.store:
        stored = core.run_stored_variant_matrix(
            args.store,
            variants,
            base,
            churn_levels=churn_levels,
            fault_plans=fault_plans,
            fidelities=fidelities,
            seeds=seeds,
            workers=args.workers,
            supervisor=supervisor,
            resume=args.resume,
            force=args.force,
        )
        result = stored.result
        if stored.cached:
            print(
                f"cache hit: run {stored.manifest.run_id} is complete — "
                f"returning the stored result (no simulation)"
            )
        elif stored.resumed_from is not None:
            print(
                f"resumed run {stored.manifest.run_id} from cell "
                f"{stored.resumed_from}/{n_cells}"
            )
        else:
            print(f"stored as run {stored.manifest.run_id}")
    else:
        result = core.run_variant_matrix(
            variants,
            base,
            churn_levels=churn_levels,
            fault_plans=fault_plans,
            fidelities=fidelities,
            seeds=seeds,
            workers=args.workers,
            supervisor=supervisor,
        )
    for cell in result.cells:
        _report_supervision(
            f"{cell.variant_label} churn={cell.churn_per_10min:g} "
            f"faults={cell.fault_label} fidelity={cell.fidelity}",
            cell.sweep,
        )
    churn_headers = [f"sync%@{level:g}" for level in result.churn_levels]
    rows = []
    for row in result.retention_table():
        means = row["mean_sync"]
        cells = [
            "-" if means.get(f"{level:g}") is None
            else round(means[f"{level:g}"], 2)
            for level in result.churn_levels
        ]
        retention = row["retention"]
        rows.append(
            (
                row["variant"],
                row["faults"],
                row["fidelity"],
                *cells,
                "-" if retention is None else round(retention, 3),
            )
        )
    print(
        format_table(
            ("variant", "faults", "fidelity", *churn_headers, "retention"),
            rows,
        )
    )
    if args.export:
        out = Path(args.export)
        out.mkdir(parents=True, exist_ok=True)
        with open(out / "variant_retention.json", "w", encoding="utf-8") as fh:
            json.dump(result.retention_table(), fh, indent=2, sort_keys=True)
        for cell in result.cells:
            tag = (
                f"{cell.variant_label}_churn{cell.churn_per_10min:g}"
                f"_{cell.fault_label}_{cell.fidelity}"
            )
            tag = "".join(
                ch if ch.isalnum() or ch in "._-" else "-" for ch in tag
            )
            export_mod.export_sync_samples(
                cell.sweep,
                out / f"sync_samples_{tag}.csv",
                label=cell.variant_label,
            )
        print(f"exported retention table and samples to {out}/")
    return 0


def _cmd_relay(args: argparse.Namespace) -> int:
    config = core.RelayExperimentConfig(
        duration=args.hours * HOURS, n_reachable=args.nodes, seed=args.seed
    )
    print(f"relay: nodes={args.nodes} duration={args.hours}h ...")
    result = core.run_relay_experiment(config)
    blocks = result.block_summary()
    txs = result.tx_summary()
    print(
        comparison_table(
            [
                ("block relay mean (s)", cal.BLOCK_RELAY_MEAN, blocks.mean),
                ("block relay max (s)", cal.BLOCK_RELAY_MAX, blocks.maximum),
                ("tx relay mean (s)", cal.TX_RELAY_MEAN, txs.mean),
                ("tx relay max (s)", cal.TX_RELAY_MAX, txs.maximum),
            ],
            title="Figs. 10-11 (1 s quantization)",
        )
    )
    if args.export:
        out = Path(args.export)
        export_mod.export_relay_times(result, out / "relay_times.csv")
        print(f"exported CSVs to {out}/")
    return 0


def _cmd_conn(args: argparse.Namespace) -> int:
    scenario = ProtocolScenario(
        ProtocolConfig(
            n_reachable=args.nodes,
            seed=args.seed,
            block_interval=600.0,
            churn_per_10min=3.0,
        )
    )
    print(f"conn: warming a {args.nodes}-node world...")
    scenario.start(warmup=1200.0)
    stability = core.run_connection_stability(
        scenario,
        observer_config=NodeConfig(
            track_connection_attempts=True, connection_lifetime_mean=150.0
        ),
    )
    success = core.run_connection_success(scenario, runs=args.runs)
    print(
        comparison_table(
            [
                ("mean outgoing connections", cal.MEAN_OUTGOING_CONNECTIONS,
                 stability.mean_connections),
                ("time below 8 connections", cal.TIME_BELOW_8_CONNECTIONS,
                 stability.fraction_below_8),
                ("connection success rate", cal.CONNECTION_SUCCESS_RATE,
                 success.overall_rate),
                ("worst-run success rate",
                 cal.CONNECTION_WORST_RUN[0] / cal.CONNECTION_WORST_RUN[1],
                 success.worst_run.success_rate),
            ],
            title="Figs. 6-7",
        )
    )
    print(
        format_table(
            ("run", "attempts", "successes"),
            [
                (index + 1, run.attempts, run.successes)
                for index, run in enumerate(success.runs)
            ],
        )
    )
    return 0


def _open_store(args: argparse.Namespace):
    from .store import RunStore, default_store_root

    root = args.store if args.store is not None else default_store_root()
    return RunStore(root)


def _cmd_store_ls(args: argparse.Namespace) -> int:
    store = _open_store(args)
    manifests = store.manifests()
    if not manifests:
        print(f"store at {store.root} is empty")
        return 0
    print(
        format_table(
            ("run id", "kind", "status", "snapshots", "engine", "seed",
             "truncated"),
            [
                (m.run_id, m.kind, m.status,
                 f"{m.completed_snapshots}/{m.snapshots_total}",
                 m.engine, m.seed, "yes" if m.truncated else "no")
                for m in manifests
            ],
        )
    )
    return 0


def _cmd_store_show(args: argparse.Namespace) -> int:
    store = _open_store(args)
    manifest = store.load_manifest(args.run_id)
    for name in ("run_id", "kind", "status", "seed", "engine",
                 "snapshots_total", "code_version", "key"):
        print(f"{name:16} {getattr(manifest, name)}")
    print(f"{'result_digest':16} {manifest.result_digest or '-'}")
    if manifest.checkpoint is not None:
        print(
            f"{'checkpoint':16} {manifest.checkpoint.digest[:16]}... "
            f"(after snapshot {manifest.checkpoint.snapshot_index})"
        )
    print(f"{'config':16} {json.dumps(manifest.config, sort_keys=True)}")
    if manifest.snapshots:
        print()
        print(
            format_table(
                ("snapshot", "when", "digest", "truncated"),
                [
                    (s.index, s.when, f"{s.digest[:16]}...",
                     "yes" if s.truncated else "no")
                    for s in manifest.snapshots
                ],
            )
        )
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    store = _open_store(args)
    report = store.gc(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"{verb} {len(report['removed'])} unreferenced blob(s) "
        f"({report['removed_bytes']} bytes), kept {report['kept']}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.app import ServiceConfig, run_service
    from .store import default_store_root

    config = ServiceConfig(
        store_root=(
            args.store if args.store is not None else default_store_root()
        ),
        host=args.host,
        port=args.port,
        slots=args.slots,
        queue_limit=args.queue_limit,
        workers=args.workers,
        seed_timeout=args.seed_timeout,
        retries=args.retries,
        cache_bytes=args.cache_mb * 1024 * 1024,
        quota_runs=args.quota_runs,
        quota_bytes=(
            args.quota_mb * 1024 * 1024 if args.quota_mb is not None else None
        ),
    )
    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
    )

    def announce(service: Any) -> None:
        print(
            f"serving {config.store_root} on "
            f"http://{config.host}:{service.port} "
            f"(slots={config.slots} queue={config.queue_limit})",
            flush=True,
        )

    try:
        asyncio.run(run_service(config, ready=announce))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_store_diff(args: argparse.Namespace) -> int:
    store = _open_store(args)
    report = store.diff(args.run_a, args.run_b)
    print(f"diff {report['a']} vs {report['b']}")
    for name, change in report["fields"].items():
        print(f"  {name}: {change['a']!r} -> {change['b']!r}")
    for key, change in report["config"].items():
        print(f"  config.{key}: {change['a']!r} -> {change['b']!r}")
    if not report["fields"] and not report["config"]:
        print("  identical run parameters")
    if report["snapshots"]:
        differing = [r["index"] for r in report["snapshots"] if not r["equal"]]
        if report["snapshots_equal"]:
            print(f"  all {len(report['snapshots'])} snapshot outputs identical")
        else:
            print(f"  snapshot outputs differ at {differing}")
    if report["result_equal"] is not None:
        print(
            "  final results identical" if report["result_equal"]
            else "  final results differ"
        )
    return 0


def _supervisor_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--seed-timeout", type=float, default=None, metavar="SECONDS",
        help="per-seed watchdog timeout for multi-seed sweeps",
    )
    p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retries per crashed/hung seed (default: 2)",
    )


def _fault_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--faults", type=str, default=None, metavar="PLAN.json",
        help="compile this fault plan onto every run (see repro.faults)",
    )
    _supervisor_flags(p)


def _profile_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--profile", nargs="?", const="repro-profile", default=None,
        metavar="OUT",
        help="run under cProfile; write hotspots to OUT.txt and OUT.json "
        "(default OUT: repro-profile).  Figures are unchanged — only "
        "wall time is (profiled loops run ~2x slower).",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ICDCS'21 Bitcoin-synchronization study",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser("campaign", help="run the Fig. 2 crawl campaign")
    campaign.add_argument("--scale", type=float, default=0.01)
    campaign.add_argument("--snapshots", type=int, default=12)
    campaign.add_argument("--seed", type=int, default=42)
    campaign.add_argument(
        "--fidelity", choices=("full", "hybrid"), default="full",
        help="node-tier fidelity: hybrid models the unreachable cloud "
        "with O(1)-memory light nodes (same seed, same figures)",
    )
    campaign.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="run N consecutive seeds (from --seed) and merge",
    )
    campaign.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for --seeds > 1 (default: CPU count)",
    )
    campaign.add_argument("--export", type=str, default=None, metavar="DIR")
    campaign.add_argument(
        "--engine", choices=("wheel", "heap"), default=None,
        help="event scheduler backend (default: REPRO_ENGINE or wheel)",
    )
    campaign.add_argument(
        "--store", type=str, default=None, metavar="DIR",
        help="checkpoint into this run store (resume/cache on re-run)",
    )
    campaign.add_argument(
        "--resume", type=str, default=None, metavar="RUN_ID",
        help="resume this run id from its last checkpoint",
    )
    _fault_flags(campaign)
    _profile_flag(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    sync = sub.add_parser("sync", help="run the Fig. 1 churn contrast")
    sync.add_argument("--nodes", type=int, default=60)
    sync.add_argument("--hours", type=float, default=2.0)
    sync.add_argument("--seed", type=int, default=21)
    sync.add_argument(
        "--fidelity", choices=("full", "hybrid"), default="full",
        help="node-tier fidelity: hybrid models the unreachable cloud "
        "with O(1)-memory light nodes (use for paper-scale --nodes)",
    )
    sync.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="run N consecutive seeds (from --seed) per churn level",
    )
    sync.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for --seeds > 1 (default: CPU count)",
    )
    sync.add_argument("--export", type=str, default=None, metavar="DIR")
    _fault_flags(sync)
    _profile_flag(sync)
    sync.set_defaults(func=_cmd_sync)

    chaos = sub.add_parser(
        "chaos",
        help="measure sync-%% degradation vs. fault intensity",
    )
    chaos.add_argument(
        "--faults", type=str, required=True, metavar="PLAN.json",
        help="fault plan to scale across the intensity axis",
    )
    chaos.add_argument(
        "--intensities", type=str, default="0,0.5,1,1.5,2", metavar="LIST",
        help="comma-separated intensity multipliers (0 = clean baseline)",
    )
    chaos.add_argument("--nodes", type=int, default=40)
    chaos.add_argument("--hours", type=float, default=1.0)
    chaos.add_argument("--seed", type=int, default=21)
    chaos.add_argument(
        "--fidelity", choices=("full", "hybrid"), default="full",
        help="node-tier fidelity for the underlying sync campaigns",
    )
    chaos.add_argument(
        "--seeds", type=int, default=2, metavar="N",
        help="seeds per intensity level",
    )
    chaos.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: CPU count)",
    )
    chaos.add_argument("--export", type=str, default=None, metavar="DIR")
    _supervisor_flags(chaos)
    _profile_flag(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    attack = sub.add_parser(
        "attack",
        help="measure sync-%% degradation vs. attacker count",
    )
    attack.add_argument(
        "--plan", type=str, required=True, metavar="PLAN.json",
        help="attack plan to scale across the attacker-count axis",
    )
    attack.add_argument(
        "--counts", type=str, default="0,18,36,73", metavar="LIST",
        help="comma-separated attacker counts (0 = clean baseline; "
        "default ends at the paper's 73-node attack)",
    )
    attack.add_argument("--nodes", type=int, default=40)
    attack.add_argument("--hours", type=float, default=1.0)
    attack.add_argument("--seed", type=int, default=21)
    attack.add_argument(
        "--fidelity", choices=("full", "hybrid"), default="full",
        help="node-tier fidelity for the underlying sync campaigns",
    )
    attack.add_argument(
        "--seeds", type=int, default=2, metavar="N",
        help="seeds per attacker-count level",
    )
    attack.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: CPU count)",
    )
    attack.add_argument(
        "--store", type=str, default=None, metavar="DIR",
        help="checkpoint each count level into this run store "
        "(resume/cache on re-run)",
    )
    attack.add_argument(
        "--mitigations", nargs="?", const="improved", default=None,
        metavar="VARIANT",
        help="also rerun the full attack under this registered policy "
        "variant and report the sync recovered (bare flag: the paper's "
        "§V 'improved' refinements)",
    )
    attack.add_argument("--export", type=str, default=None, metavar="DIR")
    _supervisor_flags(attack)
    _profile_flag(attack)
    attack.set_defaults(func=_cmd_attack)

    variants = sub.add_parser(
        "variants",
        help="run the protocol-variant lab "
        "(variant x churn x fault x fidelity)",
    )
    variants.add_argument(
        "--variants", type=str, default=",".join(DEFAULT_VARIANTS),
        metavar="LIST",
        help="comma-separated registered variant names "
        "(repro.bitcoin.policy.variant_names())",
    )
    variants.add_argument(
        "--churn", type=str,
        default=",".join(f"{level:g}" for level in DEFAULT_CHURN_LEVELS),
        metavar="LIST",
        help="comma-separated churn levels in departures per 10 min; "
        "retention = mean sync at the highest level / the lowest",
    )
    variants.add_argument(
        "--fidelities", type=str, default="full", metavar="LIST",
        help="comma-separated node-tier fidelities (full and/or hybrid)",
    )
    variants.add_argument(
        "--faults", type=str, default=None, metavar="PLAN.json",
        help="also run every variant under this fault plan "
        "(the fault-free axis is kept for contrast)",
    )
    variants.add_argument("--nodes", type=int, default=40)
    variants.add_argument("--hours", type=float, default=1.0)
    variants.add_argument("--seed", type=int, default=21)
    variants.add_argument(
        "--seeds", type=int, default=2, metavar="N",
        help="seeds per matrix cell",
    )
    variants.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: CPU count)",
    )
    variants.add_argument(
        "--store", type=str, default=None, metavar="DIR",
        help="checkpoint each cell into this run store (resume/cache "
        "on re-run)",
    )
    variants.add_argument(
        "--resume", type=str, default=None, metavar="RUN_ID",
        help="resume this matrix run id from its last completed cell",
    )
    variants.add_argument(
        "--force", action="store_true",
        help="re-execute even when the store holds a complete result",
    )
    variants.add_argument("--export", type=str, default=None, metavar="DIR")
    _supervisor_flags(variants)
    _profile_flag(variants)
    variants.set_defaults(func=_cmd_variants)

    relay = sub.add_parser("relay", help="run the Fig. 10/11 relay experiment")
    relay.add_argument("--nodes", type=int, default=30)
    relay.add_argument("--hours", type=float, default=2.0)
    relay.add_argument("--seed", type=int, default=11)
    relay.add_argument("--export", type=str, default=None, metavar="DIR")
    relay.set_defaults(func=_cmd_relay)

    conn = sub.add_parser("conn", help="run the Fig. 6/7 connection experiments")
    conn.add_argument("--nodes", type=int, default=60)
    conn.add_argument("--runs", type=int, default=5)
    conn.add_argument("--seed", type=int, default=5)
    conn.set_defaults(func=_cmd_conn)

    store = sub.add_parser("store", help="inspect the run store")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    def _store_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store", type=str, default=None, metavar="DIR",
            help="store root (default: $REPRO_STORE or ./repro-store)",
        )

    store_ls = store_sub.add_parser("ls", help="list runs")
    _store_flag(store_ls)
    store_ls.set_defaults(func=_cmd_store_ls)

    store_show = store_sub.add_parser("show", help="show one run's manifest")
    store_show.add_argument("run_id")
    _store_flag(store_show)
    store_show.set_defaults(func=_cmd_store_show)

    store_gc = store_sub.add_parser("gc", help="delete unreferenced blobs")
    store_gc.add_argument("--dry-run", action="store_true")
    _store_flag(store_gc)
    store_gc.set_defaults(func=_cmd_store_gc)

    store_diff = store_sub.add_parser("diff", help="compare two runs")
    store_diff.add_argument("run_a")
    store_diff.add_argument("run_b")
    _store_flag(store_diff)
    store_diff.set_defaults(func=_cmd_store_diff)

    serve = sub.add_parser(
        "serve",
        help="serve campaigns over HTTP from a run store (repro.serve)",
    )
    serve.add_argument(
        "--store", type=str, default=None, metavar="DIR",
        help="store root (default: $REPRO_STORE or ./repro-store)",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8742,
        help="listen port (0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--slots", type=int, default=1, metavar="N",
        help="concurrent simulating jobs",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=8, metavar="N",
        help="admitted-but-waiting jobs before 429",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="supervisor worker processes per job",
    )
    serve.add_argument(
        "--cache-mb", type=int, default=32, metavar="MB",
        help="read-cache budget",
    )
    serve.add_argument(
        "--quota-runs", type=int, default=None, metavar="N",
        help="per-tenant ceiling on fresh runs",
    )
    serve.add_argument(
        "--quota-mb", type=int, default=None, metavar="MB",
        help="per-tenant ceiling on stored bytes",
    )
    _supervisor_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    from .lint.cli import add_lint_arguments

    lint = sub.add_parser(
        "lint",
        help="run the determinism & checkpoint-safety static analyzer",
    )
    add_lint_arguments(lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    profile_out = getattr(args, "profile", None)
    if profile_out:
        from .perf.profiler import profile_to

        with profile_to(profile_out):
            return args.func(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
