"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands run the paper's experiments at a chosen scale and print the
paper-vs-measured tables; ``--export DIR`` additionally writes the raw
figure data as CSV.

Commands
--------
``campaign``   the Fig. 2 crawl campaign (Figs. 3-5, 8, 12, 13, Table I)
``sync``       the Fig. 1 contrast (2019-like vs 2020-like churn)
``relay``      the Fig. 10/11 relay-delay measurement
``conn``       the Fig. 6/7 connection experiments
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from . import core
from .bitcoin import NodeConfig
from .core import export as export_mod
from .core.reports import comparison_table, format_table
from .netmodel import (
    LongitudinalConfig,
    LongitudinalScenario,
    ProtocolConfig,
    ProtocolScenario,
    calibration as cal,
)
from .units import DAYS, HOURS


def _cmd_campaign_sweep(args: argparse.Namespace) -> int:
    base = LongitudinalConfig(
        scale=args.scale, snapshots=args.snapshots, seed=args.seed
    )
    seeds = core.seed_range(args.seed, args.seeds)
    print(
        f"campaign sweep: scale={args.scale} snapshots={args.snapshots} "
        f"seeds={seeds} workers={args.workers or 'auto'}"
    )
    sweep = core.run_campaign_sweep(base, seeds, workers=args.workers)
    s = args.scale
    mean = sweep.mean_over_seeds
    print(
        comparison_table(
            [
                ("unreachable / snapshot", cal.UNREACHABLE_PER_SNAPSHOT * s,
                 mean(lambda r: float(np.mean(r.fig4_series()["per_snapshot"])))),
                ("cumulative unreachable", cal.CUMULATIVE_UNREACHABLE * s,
                 mean(lambda r: r.fig4_series()["cumulative"][-1])),
                ("responsive / snapshot", cal.RESPONSIVE_PER_SNAPSHOT * s,
                 mean(lambda r: float(np.mean(r.fig5_series()["per_snapshot"])))),
                ("ADDR reachable share", cal.ADDR_REACHABLE_SHARE,
                 mean(lambda r: r.mean_addr_reachable_share())),
                ("daily departures", cal.DAILY_CHURN_NODES * s,
                 mean(lambda r: r.churn_stats().mean_daily_departures(
                     r.churn_matrix().snapshot_interval))),
                ("mean lifetime (days)", cal.MEAN_NODE_LIFETIME_DAYS,
                 mean(lambda r: r.churn_stats().mean_lifetime / DAYS)),
            ],
            title=f"Campaign, mean over {len(seeds)} seeds",
        )
    )
    print(
        format_table(
            ("seed", "cumulative unreachable", "responsive/snapshot"),
            [
                (seed,
                 len(result.cumulative_unreachable),
                 round(float(np.mean(result.fig5_series()["per_snapshot"])), 1))
                for seed, result in zip(sweep.seeds, sweep.per_seed)
            ],
        )
    )
    if args.export:
        out = Path(args.export)
        for seed, result in zip(sweep.seeds, sweep.per_seed):
            export_mod.export_campaign_series(
                result, out / f"seed{seed}" / "campaign_series.csv"
            )
        print(f"exported per-seed CSVs to {out}/seed<N>/")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.seeds > 1:
        return _cmd_campaign_sweep(args)
    scenario = LongitudinalScenario(
        LongitudinalConfig(
            scale=args.scale, snapshots=args.snapshots, seed=args.seed
        )
    )
    runner = core.CampaignRunner(scenario)
    print(
        f"campaign: scale={args.scale} snapshots={args.snapshots} "
        f"population={scenario.population.summary()}"
    )
    result = runner.run()
    s = args.scale
    fig4 = result.fig4_series()
    fig5 = result.fig5_series()
    stats = result.churn_stats()
    interval = result.churn_matrix().snapshot_interval
    detection = result.merged_detection(scenario.universe.asn_of)
    print(
        comparison_table(
            [
                ("unreachable / snapshot", cal.UNREACHABLE_PER_SNAPSHOT * s,
                 float(np.mean(fig4["per_snapshot"]))),
                ("cumulative unreachable", cal.CUMULATIVE_UNREACHABLE * s,
                 fig4["cumulative"][-1]),
                ("responsive / snapshot", cal.RESPONSIVE_PER_SNAPSHOT * s,
                 float(np.mean(fig5["per_snapshot"]))),
                ("ADDR reachable share", cal.ADDR_REACHABLE_SHARE,
                 result.mean_addr_reachable_share()),
                ("flooders detected", max(1, round(cal.MALICIOUS_NODE_COUNT * s)),
                 detection.count),
                ("always-on nodes", cal.ALWAYS_ON_NODES * s, stats.always_on),
                ("daily departures", cal.DAILY_CHURN_NODES * s,
                 stats.mean_daily_departures(interval)),
                ("mean lifetime (days)", cal.MEAN_NODE_LIFETIME_DAYS,
                 stats.mean_lifetime / DAYS),
            ],
            title="Campaign (paper values scaled where counts)",
        )
    )
    from .core.figures import dual_series, presence_matrix

    print()
    print("Fig. 4 (unreachable addresses per snapshot / cumulative):")
    print(dual_series(fig4["per_snapshot"], fig4["cumulative"]))
    print()
    print("Fig. 12 (presence matrix, downsampled):")
    print(presence_matrix(result.churn_matrix().matrix, max_rows=16, max_cols=60))
    if args.export:
        out = Path(args.export)
        export_mod.export_campaign_series(result, out / "campaign_series.csv")
        export_mod.export_churn(stats, out / "daily_churn.csv")
        export_mod.export_lifetimes(stats, out / "lifetimes.csv")
        export_mod.export_detection(detection, out / "flooders.csv")
        for name, report in result.hosting_reports(
            scenario.universe.asn_of
        ).items():
            export_mod.export_hosting(report, out / f"hosting_{name}.csv")
        print(f"exported CSVs to {out}/")
    return 0


def _cmd_sync(args: argparse.Namespace) -> int:
    base = core.SyncCampaignConfig(
        n_reachable=args.nodes,
        duration=args.hours * HOURS,
        seed=args.seed,
    )
    if args.seeds > 1:
        seeds = core.seed_range(args.seed, args.seeds)
        print(
            f"sync: nodes={args.nodes} duration={args.hours}h — running "
            f"2019 and 2020 churn levels over seeds={seeds} "
            f"(workers={args.workers or 'auto'})..."
        )
        results = core.run_2019_vs_2020_sweep(
            base, seeds=seeds, workers=args.workers
        )
    else:
        print(
            f"sync: nodes={args.nodes} duration={args.hours}h — running 2019 "
            f"and 2020 churn levels..."
        )
        results = core.run_2019_vs_2020(base)
    r2019, r2020 = results["2019"], results["2020"]
    print(
        comparison_table(
            [
                ("mean sync 2019 (%)", cal.SYNC_MEAN_2019, r2019.mean),
                ("mean sync 2020 (%)", cal.SYNC_MEAN_2020, r2020.mean),
                ("sync departures/10min 2019", cal.SYNC_DEPARTURES_2019,
                 r2019.sync_departures_per_10min),
                ("sync departures/10min 2020", cal.SYNC_DEPARTURES_2020,
                 r2020.sync_departures_per_10min),
            ],
            title="Fig. 1 / §IV-D",
        )
    )
    from .core.figures import density_overlay

    print()
    print("Fig. 1 kernel densities (x: 0..100% synchronized):")
    print(
        density_overlay(
            {label: result.density() for label, result in results.items()}
        )
    )
    if args.export:
        out = Path(args.export)
        for label, result in results.items():
            export_mod.export_sync_samples(
                result, out / f"sync_samples_{label}.csv", label=label
            )
            export_mod.export_density(
                result.density(), out / f"sync_kde_{label}.csv"
            )
        print(f"exported CSVs to {out}/")
    return 0


def _cmd_relay(args: argparse.Namespace) -> int:
    config = core.RelayExperimentConfig(
        duration=args.hours * HOURS, n_reachable=args.nodes, seed=args.seed
    )
    print(f"relay: nodes={args.nodes} duration={args.hours}h ...")
    result = core.run_relay_experiment(config)
    blocks = result.block_summary()
    txs = result.tx_summary()
    print(
        comparison_table(
            [
                ("block relay mean (s)", cal.BLOCK_RELAY_MEAN, blocks.mean),
                ("block relay max (s)", cal.BLOCK_RELAY_MAX, blocks.maximum),
                ("tx relay mean (s)", cal.TX_RELAY_MEAN, txs.mean),
                ("tx relay max (s)", cal.TX_RELAY_MAX, txs.maximum),
            ],
            title="Figs. 10-11 (1 s quantization)",
        )
    )
    if args.export:
        out = Path(args.export)
        export_mod.export_relay_times(result, out / "relay_times.csv")
        print(f"exported CSVs to {out}/")
    return 0


def _cmd_conn(args: argparse.Namespace) -> int:
    scenario = ProtocolScenario(
        ProtocolConfig(
            n_reachable=args.nodes,
            seed=args.seed,
            block_interval=600.0,
            churn_per_10min=3.0,
        )
    )
    print(f"conn: warming a {args.nodes}-node world...")
    scenario.start(warmup=1200.0)
    stability = core.run_connection_stability(
        scenario,
        observer_config=NodeConfig(
            track_connection_attempts=True, connection_lifetime_mean=150.0
        ),
    )
    success = core.run_connection_success(scenario, runs=args.runs)
    print(
        comparison_table(
            [
                ("mean outgoing connections", cal.MEAN_OUTGOING_CONNECTIONS,
                 stability.mean_connections),
                ("time below 8 connections", cal.TIME_BELOW_8_CONNECTIONS,
                 stability.fraction_below_8),
                ("connection success rate", cal.CONNECTION_SUCCESS_RATE,
                 success.overall_rate),
                ("worst-run success rate",
                 cal.CONNECTION_WORST_RUN[0] / cal.CONNECTION_WORST_RUN[1],
                 success.worst_run.success_rate),
            ],
            title="Figs. 6-7",
        )
    )
    print(
        format_table(
            ("run", "attempts", "successes"),
            [
                (index + 1, run.attempts, run.successes)
                for index, run in enumerate(success.runs)
            ],
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ICDCS'21 Bitcoin-synchronization study",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser("campaign", help="run the Fig. 2 crawl campaign")
    campaign.add_argument("--scale", type=float, default=0.01)
    campaign.add_argument("--snapshots", type=int, default=12)
    campaign.add_argument("--seed", type=int, default=42)
    campaign.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="run N consecutive seeds (from --seed) and merge",
    )
    campaign.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for --seeds > 1 (default: CPU count)",
    )
    campaign.add_argument("--export", type=str, default=None, metavar="DIR")
    campaign.set_defaults(func=_cmd_campaign)

    sync = sub.add_parser("sync", help="run the Fig. 1 churn contrast")
    sync.add_argument("--nodes", type=int, default=60)
    sync.add_argument("--hours", type=float, default=2.0)
    sync.add_argument("--seed", type=int, default=21)
    sync.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="run N consecutive seeds (from --seed) per churn level",
    )
    sync.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for --seeds > 1 (default: CPU count)",
    )
    sync.add_argument("--export", type=str, default=None, metavar="DIR")
    sync.set_defaults(func=_cmd_sync)

    relay = sub.add_parser("relay", help="run the Fig. 10/11 relay experiment")
    relay.add_argument("--nodes", type=int, default=30)
    relay.add_argument("--hours", type=float, default=2.0)
    relay.add_argument("--seed", type=int, default=11)
    relay.add_argument("--export", type=str, default=None, metavar="DIR")
    relay.set_defaults(func=_cmd_relay)

    conn = sub.add_parser("conn", help="run the Fig. 6/7 connection experiments")
    conn.add_argument("--nodes", type=int, default=60)
    conn.add_argument("--runs", type=int, default=5)
    conn.add_argument("--seed", type=int, default=5)
    conn.set_defaults(func=_cmd_conn)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
