"""§IV-A.2 / §IV-B text statistic: ADDR-message composition.

Paper: an average ADDR message carries 14.9% reachable and 85.1%
unreachable addresses — 85.1% of the gossip volume provides no
connectivity benefit and drives the outgoing-connection failure rate.
"""

from __future__ import annotations

from repro.core.reports import comparison_table
from repro.netmodel import calibration as cal


def test_addr_composition(benchmark, campaign):
    _scenario, result = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    share = result.mean_addr_reachable_share()
    print()
    print(
        comparison_table(
            [
                ("reachable share of ADDR", cal.ADDR_REACHABLE_SHARE, share),
                ("unreachable share of ADDR", cal.ADDR_UNREACHABLE_SHARE, 1 - share),
            ],
            title="ADDR payload composition (paper §IV-A.2)",
        )
    )
    # Unreachable addresses dominate gossip, near the measured 85/15 split.
    assert 0.08 < share < 0.25
    assert (1 - share) > 0.75
