"""Figure 13: daily arrivals vs departures of reachable nodes.

Paper: ≈708 nodes (8.6% of the reachable network) leave every day,
replaced by a near-equal number of newcomers — the arrival/departure gap
stays small, which is why the network *size* looks constant while its
*membership* churns.
"""

from __future__ import annotations

import numpy as np

from repro.core.reports import comparison_table, series_preview
from repro.netmodel import calibration as cal

from .conftest import BENCH_SCALE


def test_fig13_daily_churn(benchmark, campaign):
    _scenario, result = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    stats = result.churn_stats()
    matrix = result.churn_matrix()
    interval = matrix.snapshot_interval
    per_day = 86400.0 / interval
    s = BENCH_SCALE
    daily_departures = float(np.mean(stats.departures)) * per_day
    daily_arrivals = float(np.mean(stats.arrivals)) * per_day
    daily_rate = stats.departure_rate * per_day
    print()
    print(
        comparison_table(
            [
                ("daily departures", cal.DAILY_CHURN_NODES * s, daily_departures),
                ("daily arrivals", cal.DAILY_CHURN_NODES * s, daily_arrivals),
                ("daily churn rate", cal.DAILY_CHURN_RATE, daily_rate),
                (
                    "mean |arrivals - departures|",
                    0,
                    float(
                        np.mean(
                            np.abs(
                                np.array(stats.arrivals) - np.array(stats.departures)
                            )
                        )
                    ),
                ),
            ],
            title=f"Fig. 13 — daily churn (scale {s})",
        )
    )
    print(f"arrivals:   {series_preview(stats.arrivals)}")
    print(f"departures: {series_preview(stats.departures)}")

    # Shape: arrivals ≈ departures (small gap), rate near 8.6%/day.
    assert abs(daily_arrivals - daily_departures) < 0.35 * daily_departures
    assert 0.4 < daily_rate / cal.DAILY_CHURN_RATE < 2.2
    assert 0.4 < daily_departures / (cal.DAILY_CHURN_NODES * s) < 2.2
