"""Figure 4: unreachable addresses harvested per snapshot and cumulatively.

Paper: ≈195K unique unreachable addresses per experiment, 694,696
cumulative over 60 days, with a persistent gap between the two curves (new
addresses keep appearing).  The unreachable network is ~24x the reachable.
"""

from __future__ import annotations

import numpy as np

from repro.core.reports import comparison_table, series_preview
from repro.netmodel import calibration as cal

from .conftest import BENCH_SCALE


def test_fig04_unreachable(benchmark, campaign):
    _scenario, result = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    series = result.fig4_series()
    per_snapshot = series["per_snapshot"]
    cumulative = series["cumulative"]
    s = BENCH_SCALE
    connected_mean = float(
        np.mean([len(snap.connected) for snap in result.snapshots])
    )
    ratio = float(np.mean(per_snapshot)) / connected_mean
    print()
    print(
        comparison_table(
            [
                (
                    "unreachable / snapshot",
                    cal.UNREACHABLE_PER_SNAPSHOT * s,
                    float(np.mean(per_snapshot)),
                ),
                (
                    "cumulative unreachable",
                    cal.CUMULATIVE_UNREACHABLE * s,
                    cumulative[-1],
                ),
                (
                    "unreachable : reachable ratio",
                    cal.UNREACHABLE_TO_REACHABLE_RATIO,
                    ratio,
                ),
            ],
            title=f"Fig. 4 — unreachable harvest (scale {s})",
        )
    )
    print(f"per-snapshot: {series_preview(per_snapshot)}")
    print(f"cumulative:   {series_preview(cumulative)}")

    # Shape: cumulative monotone, keeps growing past the first snapshot.
    assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))
    assert cumulative[-1] > 1.5 * per_snapshot[0]
    # Magnitudes within 2x of scaled paper values.
    assert 0.5 < np.mean(per_snapshot) / (cal.UNREACHABLE_PER_SNAPSHOT * s) < 2.0
    assert 0.5 < cumulative[-1] / (cal.CUMULATIVE_UNREACHABLE * s) < 2.0
    # The headline 24x size gap, within a factor of 2.
    assert 12 < ratio < 48
