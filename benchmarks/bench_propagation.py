"""§IV-B structural ablation: outdegree vs block-propagation delay.

The paper's framing: at outdegree 8 a block reaches a 10K-node network in
~5 relay rounds (8^5 > 10K); if unstable connections push the effective
outdegree toward 2, propagation needs ~14 rounds (2^14 > 10K).  This
bench measures 90th-percentile block-propagation delay at three outdegree
settings and checks the monotone degradation, alongside the measured
topology statistics.
"""

from __future__ import annotations

import numpy as np

from repro.bitcoin import NodeConfig
from repro.core.propagation import PropagationTracker
from repro.core.reports import format_table
from repro.netmodel import ProtocolConfig, ProtocolScenario, topology_stats


def _run(max_outbound: int, seed: int = 61):
    scenario = ProtocolScenario(
        ProtocolConfig(
            n_reachable=40,
            seed=seed,
            block_interval=120.0,
            node_config=NodeConfig(max_outbound=max_outbound),
        )
    )
    scenario.start(warmup=900.0)
    tracker = PropagationTracker(scenario)
    scenario.sim.run_for(1800.0)
    stats = topology_stats(scenario.running_nodes())
    delays = tracker.percentile_delays(90.0, min_coverage=0.85)
    mean_delay = float(np.mean(delays)) if delays else float("inf")
    return stats, mean_delay, len(delays)


def test_outdegree_propagation_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {d: _run(d) for d in (8, 4, 2)}, rounds=1, iterations=1
    )
    rows = []
    for outdegree, (stats, delay, blocks) in results.items():
        rows.append(
            (
                outdegree,
                round(stats.mean_outdegree, 2),
                round(stats.expected_propagation_rounds, 2),
                round(delay, 2),
                blocks,
            )
        )
    print()
    print(
        format_table(
            (
                "max_outbound",
                "measured outdegree",
                "est. rounds (log_d n)",
                "90% delay (s)",
                "blocks",
            ),
            rows,
            title="§IV-B ablation — outdegree vs propagation",
        )
    )
    delay_8 = results[8][1]
    delay_4 = results[4][1]
    delay_2 = results[2][1]
    # Monotone degradation, with a clear gap between 8 and 2.
    assert delay_8 <= delay_4 * 1.1
    assert delay_2 > delay_8
    # The connectivity stays intact even at outdegree 2 in a 40-node net.
    assert results[2][0].largest_component_share > 0.9
