"""Figure 10: block relaying time (receipt → relay to last connection).

Paper: a node with 8 outgoing + 17 incoming connections relayed blocks to
its last connection after 1.39 s on average, up to 17 s under request
load — the round-robin vSendMessage effect of §IV-C.  Times are floored
to whole seconds, as in the paper's debug.log methodology.
"""

from __future__ import annotations

from repro.core.reports import comparison_table, series_preview
from repro.netmodel import calibration as cal


def test_fig10_block_relay(benchmark, relay_result):
    result = benchmark.pedantic(lambda: relay_result, rounds=1, iterations=1)
    summary = result.block_summary(quantized=True)
    raw = result.block_summary(quantized=False)
    print()
    print(
        comparison_table(
            [
                ("mean block relaying time (s)", cal.BLOCK_RELAY_MEAN, summary.mean),
                ("max block relaying time (s)", cal.BLOCK_RELAY_MAX, summary.maximum),
                ("min block relaying time (s)", 0.0, summary.minimum),
                ("blocks measured", 0, summary.count),
            ],
            title="Fig. 10 — block relaying time (1 s log quantization)",
        )
    )
    print(f"raw mean {raw.mean:.2f}s / raw max {raw.maximum:.1f}s")
    print(f"series: {series_preview(result.block_relay_times)}")

    assert summary.count >= 15
    assert result.outbound_at_end == cal.RELAY_NODE_OUTGOING
    assert result.inbound_at_end == cal.RELAY_NODE_INCOMING
    # Mean within ~2x of the paper; a multi-second tail exists.
    assert 0.5 < summary.mean < 3.5
    assert summary.maximum >= 2.0
    assert summary.maximum <= 30.0  # same order as the 17 s outlier
