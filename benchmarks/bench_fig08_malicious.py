"""Figure 8: malicious peers flooding unreachable addresses.

Paper: 73 reachable nodes answered every GETADDR with *only* unreachable
addresses; 8 of them sent more than 100K addresses, the largest more than
400K; 59% were hosted in AS3320.  Volumes scale with REPRO_BENCH_SCALE.
"""

from __future__ import annotations

from repro.core.reports import comparison_table, series_preview
from repro.netmodel import calibration as cal

from .conftest import BENCH_SCALE


def test_fig08_malicious(benchmark, campaign):
    scenario, result = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    report = result.merged_detection(scenario.universe.asn_of)
    s = BENCH_SCALE
    # Volumes count ADDR records sent over the whole campaign, as Fig. 8
    # does; the comparison threshold scales with the population scale.
    threshold = int(100_000 * s)
    volumes = report.flood_volumes()
    as3320_share = report.as_share_by_asn().get(cal.MALICIOUS_AS3320, 0.0)
    print()
    print(
        comparison_table(
            [
                ("flooders detected", cal.MALICIOUS_NODE_COUNT, report.count),
                (
                    f"flooders over {threshold} records",
                    cal.MALICIOUS_OVER_100K,
                    report.count_over(threshold),
                ),
                ("max flood (records)", cal.MALICIOUS_MAX_FLOOD * s, report.max_flood),
                ("share in AS3320", cal.MALICIOUS_AS3320_SHARE, as3320_share),
            ],
            title=f"Fig. 8 — ADDR flooders (volumes scaled by {s})",
        )
    )
    print(f"flood volumes (desc): {series_preview(volumes)}")

    # All planted flooders found, no honest node flagged.
    planted = {flooder.addr for flooder in scenario.flooders}
    flagged = {finding.peer for finding in report.findings}
    assert flagged == planted
    assert report.count == cal.MALICIOUS_NODE_COUNT
    # Heavy-tailed volumes: a minority of flooders dominates the records.
    assert 1 <= report.count_over(threshold) <= 40
    assert report.max_flood > threshold
    top_share = sum(volumes[:8]) / sum(volumes)
    assert top_share > 0.3  # the top-8 send a large share, as in Fig. 8
    # AS3320 clustering near the measured 59%.
    assert 0.35 < as3320_share < 0.85
