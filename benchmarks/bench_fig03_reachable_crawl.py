"""Figure 3: reachable-address collection from Bitnodes + the DNS database.

Paper (per-snapshot averages): Bitnodes 10,114; DNS 6,637; common 6,078;
excluded 439/342/329 (critical infrastructure); connected 8,270; 404 nodes
connected that Bitnodes missed.  All counts scale with REPRO_BENCH_SCALE.
"""

from __future__ import annotations

import numpy as np

from repro.core.reports import comparison_table
from repro.netmodel import calibration as cal

from .conftest import BENCH_SCALE


def test_fig03_reachable_crawl(benchmark, campaign):
    scenario, result = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    rows = result.fig3_rows()
    mean = {key: float(np.mean([row[key] for row in rows])) for key in rows[0]}
    s = BENCH_SCALE
    print()
    print(
        comparison_table(
            [
                ("bitnodes addrs", cal.BITNODES_ADDRS_PER_SNAPSHOT * s, mean["bitnodes"]),
                ("dns addrs", cal.DNS_ADDRS_PER_SNAPSHOT * s, mean["dns"]),
                ("common addrs", cal.COMMON_ADDRS_PER_SNAPSHOT * s, mean["common"]),
                ("excluded bitnodes", cal.EXCLUDED_BITNODES * s, mean["excluded_bitnodes"]),
                ("excluded dns", cal.EXCLUDED_DNS * s, mean["excluded_dns"]),
                ("excluded common", cal.EXCLUDED_COMMON * s, mean["excluded_common"]),
                ("connected", cal.CONNECTED_PER_SNAPSHOT * s, mean["connected"]),
                ("dns-only connected", cal.DNS_ONLY_CONNECTED * s, mean["dns_only_connected"]),
            ],
            title=f"Fig. 3 — reachable crawl (scale {s})",
        )
    )

    # Shape: bitnodes > dns; common is most of dns; both sources matter.
    assert mean["bitnodes"] > mean["dns"] > mean["common"] * 0.8
    assert mean["common"] / mean["dns"] > 0.75
    assert mean["dns_only_connected"] > 0  # the DNS database adds coverage
    # Scaled magnitudes within 2x of the paper.
    assert 0.5 < mean["bitnodes"] / (cal.BITNODES_ADDRS_PER_SNAPSHOT * s) < 2.0
    assert 0.5 < mean["connected"] / (cal.CONNECTED_PER_SNAPSHOT * s) < 2.0
