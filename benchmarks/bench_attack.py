"""Event-throughput price of an active ADDR-flooding attack at scale.

The adversary suite puts misbehaving nodes *inside* the hot loop: every
flooded GETADDR response is minted, serialized, and delivered through
the same transport as honest traffic.  This bench measures what that
costs — the same 1,500-node hybrid scenario (10x the seed sizing, the
`bench_scale.py` workload) run twice on the same seed, clean and under
the paper's 73-flooder attack, reporting events/s for both and the
overhead factor.

Two gates:

* **self-relative overhead** — the attacked run must keep at least
  ``--min-ratio`` (default 0.5) of the clean run's events/s measured in
  the *same process on the same machine*, so the gate is immune to
  runner noise.  Active flooding costing more than 2x throughput means
  the adversary path regressed (e.g. per-request pool rebuilds).
* **baseline comparison** (``--baseline BENCH_attack.json``) — the
  attacked events/s against the committed figure, with the same
  loose warn/fail ratios as `bench_scale.py`.

Run standalone to refresh the tracked numbers::

    PYTHONPATH=src python benchmarks/bench_attack.py --out BENCH_attack.json

The figures are only meaningful run exclusively (no concurrent work on
the box): wall-clock ev/s is the measurement, not simulated time.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, Optional

from repro.adversary import AttackPlan, AttackerSpec
from repro.netmodel.scenario import ProtocolConfig, ProtocolScenario
from repro.perf import read_memory

#: The paper's observed attack: 73 flooding nodes (§IV-B, Fig. 8).
PAPER_FLOODERS = 73


def flood_plan(attackers: int, flood_volume: int = 10_000) -> AttackPlan:
    """The bench's attack: an unreachable-tier ADDR-flooder cohort.

    ``flood_interval=5`` keeps the cohort actively pushing unsolicited
    ADDR inside the short measured window — the bench prices *active*
    flooding, not idle attackers.
    """
    return AttackPlan(
        attackers=(
            AttackerSpec(
                kind="addr_flooder",
                count=attackers,
                flood_volume=flood_volume,
                flood_interval=5.0,
                name="bench-flood",
            ),
        )
    )


def run_condition(
    n_reachable: int,
    warmup: float,
    duration: float,
    seed: int,
    attack: Optional[AttackPlan],
) -> Dict[str, object]:
    """One hybrid scenario run; ``attack=None`` is the clean twin."""
    config = ProtocolConfig(
        seed=seed,
        n_reachable=n_reachable,
        fidelity="hybrid",
        churn_per_10min=6.0,
        pre_mined_blocks=10,
        attack=attack,
    )
    t0 = time.perf_counter()
    scenario = ProtocolScenario(config)
    build_s = time.perf_counter() - t0

    t1 = time.perf_counter()
    scenario.start(warmup=warmup)
    warmup_s = time.perf_counter() - t1

    t2 = time.perf_counter()
    result = scenario.sim.run_for(duration)
    run_s = time.perf_counter() - t2

    memory = read_memory(collect=True)
    out: Dict[str, object] = {
        "condition": "clean" if attack is None else "attacked",
        "n_reachable": n_reachable,
        "warmup_sim_s": warmup,
        "measured_sim_s": duration,
        "build_wall_s": round(build_s, 1),
        "warmup_wall_s": round(warmup_s, 1),
        "run_wall_s": round(run_s, 2),
        "events_dispatched": int(result),
        "events_per_sec": round(int(result) / run_s, 1) if run_s > 0 else 0.0,
        "sync_fraction": round(scenario.sync_fraction(), 4),
        "peak_rss_bytes": memory.peak_rss_bytes,
    }
    if scenario.attack_force is not None:
        out["attack_stats"] = scenario.attack_force.stats()
    return out


def run_bench(
    n_reachable: int = 1500,
    warmup: float = 15.0,
    duration: float = 20.0,
    seed: int = 5,
    attackers: int = PAPER_FLOODERS,
    flood_volume: int = 10_000,
) -> Dict[str, object]:
    clean = run_condition(n_reachable, warmup, duration, seed, None)
    attacked = run_condition(
        n_reachable,
        warmup,
        duration,
        seed,
        flood_plan(attackers, flood_volume),
    )
    clean_evps = clean["events_per_sec"]
    attacked_evps = attacked["events_per_sec"]
    return {
        "workload": {
            "name": "addr_flood_throughput_overhead",
            "n_reachable": n_reachable,
            "attackers": attackers,
            "flood_volume": flood_volume,
            "warmup_sim_s": warmup,
            "duration_sim_s": duration,
            "seed": seed,
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "clean_run": clean,
        "attacked_run": attacked,
        #: attacked / clean events-per-second, both from this process.
        "throughput_ratio": (
            round(attacked_evps / clean_evps, 3) if clean_evps else 0.0
        ),
        #: extra events the attack pushed through the loop, per sim-sec.
        "extra_events": (
            int(attacked["events_dispatched"]) - int(clean["events_dispatched"])
        ),
    }


def compare_to_baseline(
    result: Dict[str, object],
    baseline_path: str,
    warn_ratio: float,
    fail_ratio: float,
) -> int:
    """Attacked-run events/s gate against a committed BENCH_attack.json."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    base_evps = baseline["attacked_run"]["events_per_sec"]
    measured = result["attacked_run"]["events_per_sec"]
    ratio = measured / base_evps if base_evps else float("inf")
    print(
        f"baseline comparison: {measured:,.0f} ev/s attacked vs "
        f"{base_evps:,.0f} ev/s recorded ({ratio:.2f}x)"
    )
    if ratio < fail_ratio:
        print(
            f"FAIL: attacked events/s fell below {fail_ratio}x the baseline "
            f"({ratio:.2f}x) — adversary-path regression"
        )
        return 1
    if ratio < warn_ratio:
        print(
            f"WARNING: attacked events/s below {warn_ratio}x the baseline "
            f"({ratio:.2f}x) — investigate before it reaches the fail line"
        )
    return 0


def _format_run(run: Dict[str, object]) -> list:
    lines = [
        f"  {run['condition']:>9}: {run['events_dispatched']:>12,} events"
        f"  ({run['events_per_sec']:,.0f} ev/s)"
        f"  sync {run['sync_fraction']:.3f}"
        f"  run wall {run['run_wall_s']:.1f} s",
    ]
    stats = run.get("attack_stats")
    if stats:
        lines.append(
            f"             {stats.get('attackers', 0)} attackers, "
            f"{stats.get('addrs_flooded', 0):,} addresses flooded"
        )
    return lines


def _format(result: Dict[str, object]) -> str:
    work = result["workload"]
    lines = [
        f"attack bench ({work['n_reachable']:,} full-tier reachable, "
        f"{work['attackers']} flooders x {work['flood_volume']:,} addrs):",
    ]
    lines.extend(_format_run(result["clean_run"]))
    lines.extend(_format_run(result["attacked_run"]))
    lines.append(
        f"  throughput ratio (attacked/clean): {result['throughput_ratio']}"
        f"  ({result['extra_events']:+,} events)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry point (reduced size so the bench suite stays quick)
# ----------------------------------------------------------------------
def test_attack_overhead_smoke(benchmark):
    result = benchmark.pedantic(
        lambda: run_bench(
            n_reachable=120, warmup=10.0, duration=15.0, attackers=8
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(_format(result))
    attacked = result["attacked_run"]
    assert attacked["attack_stats"]["addrs_flooded"] > 0
    assert attacked["events_dispatched"] > 0
    # The flooders add traffic, they must not melt the loop: even at
    # smoke scale the attacked run keeps a sane share of clean ev/s.
    assert result["throughput_ratio"] > 0.3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=1500)
    parser.add_argument("--warmup", type=float, default=15.0)
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--attackers", type=int, default=PAPER_FLOODERS)
    parser.add_argument("--flood-volume", type=int, default=10_000)
    parser.add_argument(
        "--min-ratio", type=float, default=0.5,
        help="fail (exit 1) when attacked ev/s falls below this fraction "
        "of the same-process clean run",
    )
    parser.add_argument(
        "--out", default=None, help="write BENCH_attack.json-style output here"
    )
    parser.add_argument(
        "--baseline", default=None, metavar="BENCH_attack.json",
        help="compare attacked events/s against this committed bench file",
    )
    parser.add_argument(
        "--warn-ratio", type=float, default=0.75,
        help="warn when attacked ev/s falls below this fraction of baseline",
    )
    parser.add_argument(
        "--fail-ratio", type=float, default=0.5,
        help="exit 1 when attacked ev/s falls below this fraction of baseline",
    )
    args = parser.parse_args(argv)
    result = run_bench(
        n_reachable=args.nodes,
        warmup=args.warmup,
        duration=args.duration,
        seed=args.seed,
        attackers=args.attackers,
        flood_volume=args.flood_volume,
    )
    print(_format(result))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    status = 0
    if result["throughput_ratio"] < args.min_ratio:
        print(
            f"FAIL: attacked run kept only {result['throughput_ratio']}x of "
            f"clean throughput (floor {args.min_ratio}x) — adversary-path "
            f"regression"
        )
        status = 1
    if args.baseline is not None:
        status = max(
            status,
            compare_to_baseline(
                result, args.baseline, args.warn_ratio, args.fail_ratio
            ),
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
