"""Figure 7: success rate of outgoing connection attempts.

Paper: five 5-minute runs of a restarted node; on average only 11.2% of
attempts succeeded (worst run 8/137 = 5.8%), because the new/tried tables
are dominated by unreachable addresses.
"""

from __future__ import annotations

from repro.core import run_connection_success
from repro.core.reports import comparison_table, format_table
from repro.netmodel import calibration as cal


def test_fig07_conn_success(benchmark, warm_protocol):
    result = benchmark.pedantic(
        lambda: run_connection_success(warm_protocol, runs=5, duration=300.0),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ("run", "attempts", "successes", "rate"),
            [
                (index + 1, run.attempts, run.successes, run.success_rate)
                for index, run in enumerate(result.runs)
            ],
            title="Fig. 7 — per-run outgoing-connection outcomes",
        )
    )
    print(
        comparison_table(
            [
                ("success rate", cal.CONNECTION_SUCCESS_RATE, result.overall_rate),
                ("failure rate", 0.888, 1 - result.overall_rate),
                (
                    "worst-run rate",
                    cal.CONNECTION_WORST_RUN[0] / cal.CONNECTION_WORST_RUN[1],
                    result.worst_run.success_rate,
                ),
            ],
            title="Fig. 7 — success-rate summary",
        )
    )

    # Shape: failure dominates, success in the paper's band.
    assert 0.04 < result.overall_rate < 0.30
    assert all(run.attempts > 30 for run in result.runs)
    assert result.worst_run.success_rate < 0.20
