"""Chaos sweep: synchronization degradation vs fault intensity.

Not a paper figure — the resilience companion to Fig. 1.  One shipped
fault plan (loss + duplication + latency spike + AS-scoped resets,
partition, and crash) is scaled across an intensity axis over the same
seeds; intensity 0 is the clean baseline.  The shape assertion is the
point: sync degrades monotonically-ish with intensity, and the whole
sweep survives its own faults (no failed seeds) under the supervised
runner.
"""

from __future__ import annotations

import os

from repro.core.fault_experiments import run_sync_under_faults
from repro.core.reports import format_table
from repro.core.sync_experiments import SyncCampaignConfig
from repro.faults.plan import FaultPlan

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

PLAN_PATH = os.path.join(os.path.dirname(__file__), "..", "examples", "faultplan_chaos.json")


def test_sync_under_faults(benchmark):
    plan = FaultPlan.from_file(PLAN_PATH)
    base = SyncCampaignConfig(
        n_reachable=16,
        churn_per_10min=3.0,
        pre_mined_blocks=30,
        sample_period=200.0,
        poll_spread=120.0,
        warmup=300.0,
        duration=(0.5 if FAST else 1.0) * 3600.0,
        seed=21,
    )
    result = benchmark.pedantic(
        lambda: run_sync_under_faults(
            plan, base=base, intensities=(0.0, 0.5, 1.0, 2.0), seeds=[21, 22]
        ),
        rounds=1,
        iterations=1,
    )

    rows = result.degradation_table()
    print()
    print(
        format_table(
            ["intensity", "mean sync %", "median sync %", "Δ vs baseline", "failed", "retried"],
            [
                [
                    row["intensity"],
                    round(row["mean_sync"], 1),
                    round(row["median_sync"], 1),
                    "—" if row["delta_vs_baseline"] is None else round(row["delta_vs_baseline"], 1),
                    len(row["failed_seeds"]),
                    len(row["retried_seeds"]),
                ]
                for row in rows
            ],
            title="Chaos — sync degradation vs fault intensity",
        )
    )
    for level in result.levels:
        stats = {k: v for k, v in level.fault_stats.items() if v}
        print(f"intensity {level.intensity}: {stats or 'no faults fired'}")

    # The supervised sweep completes: every seed at every level reports.
    assert all(not row["failed_seeds"] for row in rows)
    baseline = result.baseline
    assert baseline is not None
    # Clean baseline really is clean.
    assert all(value == 0 for value in baseline.fault_stats.values())
    # Faults fire once intensity is on, and full intensity hurts sync.
    stressed = result.levels[-1]
    assert stressed.fault_stats["messages_dropped"] > 0
    assert stressed.mean_sync < baseline.mean_sync
