"""Design-choice ablation: Algorithm 1's stop rule vs table coverage.

The paper's Algorithm 1 stops "if a new message contains all IP addresses
that were sent in previous ADDR messages".  Against Bitcoin Core's
random-sample responses that rule terminates only by luck; our default
crawler keeps requesting while at least half of each response is new
(DESIGN.md §5).  This bench quantifies the trade-off: per-node table
coverage and request cost under each rule.
"""

from __future__ import annotations

import numpy as np

from repro.core import GetAddrConfig, GetAddrCrawler
from repro.core.reports import format_table
from repro.netmodel.addr_server import AddrServer
from repro.simnet import NetAddr, Simulator

CRAWLER = NetAddr.parse("203.0.113.9:8333")


def _build_world(seed: int = 5, servers: int = 30, table_size: int = 400):
    sim = Simulator(seed=seed)
    rng = sim.random.stream("bench")
    world = []
    for index in range(servers):
        table = [
            NetAddr(ip=((index + 10) << 16) | (i + 1)) for i in range(table_size)
        ]
        server = AddrServer(
            sim, NetAddr(ip=((index + 1) << 8) | 1), rng, table=table
        )
        server.start()
        world.append(server)
    return sim, world


def _crawl(stop_rule: str, threshold: float = 0.5):
    sim, servers = _build_world()
    crawler = GetAddrCrawler(
        sim,
        CRAWLER,
        GetAddrConfig(
            stop_rule=stop_rule,
            adaptive_threshold=threshold,
            max_rounds=100,
        ),
    )
    result = crawler.run_to_completion([s.addr for s in servers])
    coverages = []
    rounds = []
    for server in servers:
        harvest = result.harvests[server.addr]
        coverages.append(
            len(harvest.addresses & set(server.table)) / len(server.table)
        )
        rounds.append(harvest.rounds)
    return float(np.mean(coverages)), float(np.mean(rounds))


def test_crawler_stop_rule_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "paper": _crawl("paper"),
            "adaptive@0.5": _crawl("adaptive", 0.5),
            "adaptive@0.2": _crawl("adaptive", 0.2),
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ("stop rule", "mean table coverage", "mean GETADDR rounds"),
            [
                (name, round(coverage, 3), round(rounds, 1))
                for name, (coverage, rounds) in results.items()
            ],
            title="Algorithm 1 stop-rule ablation (400-entry tables)",
        )
    )
    paper_cov, paper_rounds = results["paper"]
    adaptive_cov, adaptive_rounds = results["adaptive@0.5"]
    greedy_cov, greedy_rounds = results["adaptive@0.2"]
    # The paper rule almost exhausts tables but costs the most requests;
    # relaxing the threshold trades coverage for cost monotonically.
    assert paper_cov >= adaptive_cov >= 0.3
    assert greedy_cov >= adaptive_cov
    assert paper_rounds >= adaptive_rounds
    assert greedy_rounds >= adaptive_rounds
