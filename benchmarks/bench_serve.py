"""Serving-layer load benchmark: read-path latency, cold vs warm.

What decides whether the campaign service is a usable front-end to the
run store is the *read* path: once a campaign is simulated (seconds to
hours), how fast can N concurrent clients pull its result summary back
out?  Two regimes matter:

* **cold** — the read cache is disabled, so every request walks the
  store: manifest load, blob read, SHA-256 verification, checkpoint
  unpickle, summary render.
* **warm** — the cache is enabled and pre-warmed, so repeats are pure
  memory hits behind the same HTTP/routing/metrics machinery.

The bench box is **single-core**, so concurrency here measures queueing
behavior (does p99 degrade gracefully as clients pile onto one loop?),
not parallel throughput — clients are pinned at 1/4/16 and the metric
is per-request latency.  Run it exclusively: any concurrent load on the
box corrupts the figures.

Also measured: submit-path dedup (a resubmission of a stored campaign
is answered from the index without simulating — the cache-hit lane the
whole design exists for).

Run standalone to refresh the tracked numbers::

    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import tempfile
import time
from typing import Dict, List

from repro.serve import CampaignService, Client, ServiceConfig

#: Pinned client counts (single-core box: latency under queueing, not
#: parallel throughput).
CONCURRENCY_LEVELS = (1, 4, 16)

#: The benchmark campaign: small enough to simulate in ~1s, real enough
#: that its result blob exercises verify + unpickle on the cold path.
SUBMISSION = {
    "scenario": {"scale": 0.002, "campaign_days": 1.0},
    "snapshots": 2,
}


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


def _stats(samples: List[float]) -> Dict[str, float]:
    return {
        "requests": len(samples),
        "p50_ms": round(_percentile(samples, 0.50), 3),
        "p99_ms": round(_percentile(samples, 0.99), 3),
        "mean_ms": round(sum(samples) / len(samples), 3),
    }


async def _timed_reads(
    host: str, port: int, path: str, clients: int, per_client: int
) -> List[float]:
    """Latency samples (ms) from ``clients`` concurrent keep-alive
    connections each issuing ``per_client`` sequential reads."""

    async def worker() -> List[float]:
        samples: List[float] = []
        async with Client(host, port) as client:
            for _ in range(per_client):
                t0 = time.perf_counter()
                response = await client.request("GET", path)
                samples.append((time.perf_counter() - t0) * 1000.0)
                assert response.status == 200, response.status
        return samples

    batches = await asyncio.gather(*(worker() for _ in range(clients)))
    return [sample for batch in batches for sample in batch]


async def _drain_job(client: Client, job_id: str) -> None:
    async for _ in client.stream_events(f"/v1/jobs/{job_id}/events"):
        pass


async def _run(per_client: int) -> Dict[str, object]:
    report: Dict[str, object] = {
        "workload": {
            "name": "serve_read_path",
            "submission": SUBMISSION,
            "concurrency_levels": list(CONCURRENCY_LEVELS),
            "reads_per_client": per_client,
            "note": (
                "single-core box: latency at pinned concurrency, "
                "not parallel throughput"
            ),
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
    }
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        service = CampaignService(
            ServiceConfig(store_root=tmp, port=0, log_requests=False)
        )
        await service.start()
        host, port = "127.0.0.1", service.port
        try:
            async with Client(host, port) as client:
                # -- submit path: fresh simulate vs store cache hit ----
                t0 = time.perf_counter()
                r = await client.request(
                    "POST", "/v1/campaigns", body=SUBMISSION
                )
                assert r.status == 202, r.status
                await _drain_job(client, r.json()["id"])
                fresh_s = time.perf_counter() - t0

                t0 = time.perf_counter()
                r = await client.request(
                    "POST", "/v1/campaigns", body=SUBMISSION
                )
                resubmit_ms = (time.perf_counter() - t0) * 1000.0
                assert r.json()["disposition"] == "cached", r.json()
                run_id = r.json()["runs"][0]["run_id"]
                report["submit"] = {
                    "fresh_s": round(fresh_s, 3),
                    "cached_resubmit_ms": round(resubmit_ms, 3),
                    "speedup": round(fresh_s * 1000.0 / resubmit_ms, 1),
                }

                result_path = f"/v1/runs/{run_id}/result"

                # -- read path: cold (cache off) then warm (cache on) --
                for mode in ("cold", "warm"):
                    enabled = mode == "warm"
                    r = await client.request(
                        "POST", "/v1/admin/cache", body={"enabled": enabled}
                    )
                    assert r.status == 200
                    if enabled:  # pre-warm so every timed read hits
                        await client.request("GET", result_path)
                    levels: Dict[str, object] = {}
                    for clients in CONCURRENCY_LEVELS:
                        samples = await _timed_reads(
                            host, port, result_path, clients, per_client
                        )
                        levels[f"clients_{clients}"] = _stats(samples)
                    report[f"read_{mode}"] = levels

                metrics = await client.request("GET", "/v1/metrics")
                cache = metrics.json()["read_cache"]
                report["read_cache"] = {
                    "hits": cache["hits"],
                    "misses": cache["misses"],
                    "hit_ratio": cache["hit_ratio"],
                }
        finally:
            await service.shutdown()
    return report


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=None, help="write BENCH_serve.json-style output here"
    )
    parser.add_argument(
        "--reads-per-client", type=int, default=30,
        help="sequential timed reads per client connection",
    )
    args = parser.parse_args(argv)

    report = asyncio.run(_run(args.reads_per_client))

    cold = report["read_cold"]["clients_1"]["p50_ms"]
    warm = report["read_warm"]["clients_1"]["p50_ms"]
    print(f"submit: fresh {report['submit']['fresh_s']}s, cached resubmit "
          f"{report['submit']['cached_resubmit_ms']}ms "
          f"({report['submit']['speedup']}x)")
    for mode in ("cold", "warm"):
        for level, stats in report[f"read_{mode}"].items():
            print(f"read {mode:4s} {level:10s} "
                  f"p50={stats['p50_ms']:8.3f}ms p99={stats['p99_ms']:8.3f}ms")
    if warm >= cold:
        print(f"WARNING: warm p50 ({warm}ms) not below cold p50 ({cold}ms)")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
