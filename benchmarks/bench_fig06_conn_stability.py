"""Figure 6: stability of a node's outgoing connections over 260 seconds.

Paper: the connection count oscillates between 2 and 10 (8 slots + 2
feelers), averages 6.67, and sits below 8 for ~60% of the experiment.
"""

from __future__ import annotations

from repro.bitcoin import NodeConfig
from repro.core import run_connection_stability
from repro.core.reports import comparison_table, series_preview
from repro.netmodel import calibration as cal


def test_fig06_conn_stability(benchmark, warm_protocol):
    # The observer sees real-world connection instability: its outbound
    # links drop spontaneously (peer evictions, NAT timeouts) and refill
    # slowly through polluted tables.
    observer_config = NodeConfig(
        track_connection_attempts=True,
        connection_lifetime_mean=150.0,
    )
    result = benchmark.pedantic(
        lambda: run_connection_stability(
            warm_protocol,
            duration=cal.CONN_STABILITY_DURATION,
            observer_config=observer_config,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        comparison_table(
            [
                ("mean outgoing connections", cal.MEAN_OUTGOING_CONNECTIONS, result.mean_connections),
                ("time below 8 connections", cal.TIME_BELOW_8_CONNECTIONS, result.fraction_below_8),
                ("min connections", cal.CONNECTION_RANGE[0], result.min_connections),
                ("max connections", cal.CONNECTION_RANGE[1], result.max_connections),
            ],
            title="Fig. 6 — outgoing-connection stability",
        )
    )
    print(f"series: {series_preview(result.series.values)}")

    # Shape: unstable, capped by 8 slots + 2 feelers, averages below 8.
    assert result.max_connections <= 10
    assert result.mean_connections < 8.0
    assert result.fraction_below_8 > 0.2
    assert result.min_connections < 8
