"""§IV-D text statistic: synchronized-node departures per 10 minutes.

Paper: the synchronized departure rate went from 3.9 (Sep-Dec 2019) to
7.6 (Jan-Apr 2020) per 10 minutes — it "nearly doubled", and it is the
paper's root cause for Fig. 1's deterioration.
"""

from __future__ import annotations

from repro.core.reports import comparison_table
from repro.netmodel import calibration as cal


def test_sync_departures(benchmark, sync_campaigns):
    results = benchmark.pedantic(lambda: sync_campaigns, rounds=1, iterations=1)
    rate_2019 = results["2019"].sync_departures_per_10min
    rate_2020 = results["2020"].sync_departures_per_10min
    print()
    print(
        comparison_table(
            [
                ("sync departures / 10 min (2019)", cal.SYNC_DEPARTURES_2019, rate_2019),
                ("sync departures / 10 min (2020)", cal.SYNC_DEPARTURES_2020, rate_2020),
                (
                    "2020 : 2019 ratio",
                    cal.SYNC_DEPARTURES_2020 / cal.SYNC_DEPARTURES_2019,
                    rate_2020 / rate_2019 if rate_2019 else float("nan"),
                ),
            ],
            title="§IV-D — synchronized-node departures",
        )
    )
    # The doubling is the finding; absolute rates land near the paper's
    # because the campaign churn rates were calibrated to them.
    assert rate_2019 > 0
    assert 1.5 < rate_2020 / rate_2019 < 3.5
    assert 1.5 < rate_2019 < 8.0
    assert 4.0 < rate_2020 < 16.0
