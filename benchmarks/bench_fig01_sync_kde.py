"""Figure 1: network-synchronization kernel densities, 2019 vs 2020.

Paper: mean/median 72.02/80.38 (Sep-Dec 2019) vs 61.91/65.47 (Jan-Apr
2020); the 2020 density shifts left.  Reproduced by doubling the
synchronized-node churn rate over an otherwise identical live network.
"""

from __future__ import annotations

from repro.analysis import compare_densities
from repro.core.reports import comparison_table, series_preview
from repro.netmodel import calibration as cal


def test_fig01_sync_kde(benchmark, sync_campaigns):
    results = benchmark.pedantic(lambda: sync_campaigns, rounds=1, iterations=1)
    r2019, r2020 = results["2019"], results["2020"]
    density_2019, density_2020 = compare_densities(
        r2019.sync_samples, r2020.sync_samples
    )
    print()
    print(
        comparison_table(
            [
                ("sync mean 2019 (%)", cal.SYNC_MEAN_2019, r2019.mean),
                ("sync median 2019 (%)", cal.SYNC_MEDIAN_2019, r2019.median),
                ("sync mean 2020 (%)", cal.SYNC_MEAN_2020, r2020.mean),
                ("sync median 2020 (%)", cal.SYNC_MEDIAN_2020, r2020.median),
                (
                    "mean drop 2019→2020 (pts)",
                    cal.SYNC_MEAN_2019 - cal.SYNC_MEAN_2020,
                    r2019.mean - r2020.mean,
                ),
            ],
            title="Fig. 1 — network synchronization (paper vs measured)",
        )
    )
    print(f"2019 samples: {series_preview(r2019.sync_samples)}")
    print(f"2020 samples: {series_preview(r2020.sync_samples)}")

    # Shape assertions: 2020 is worse, by roughly the paper's margin.
    assert r2020.mean < r2019.mean
    assert 4.0 < (r2019.mean - r2020.mean) < 25.0
    assert 55.0 < r2019.mean < 90.0
    assert 45.0 < r2020.mean < 80.0
    # The KDE mode also shifts left (the Fig. 1 visual).
    assert density_2020.mean < density_2019.mean
