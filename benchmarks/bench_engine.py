"""Pure engine throughput on the cancel-heavy protocol-timer workload.

The workload is calibrated to what the protocol layer actually does to
the scheduler: every unit of peer activity *cancels* a pending timeout
and re-arms it (inactivity timeouts, pings, handshake deadlines), so
cancelled entries vastly outnumber fired ones and pile up in a lazily-
cancelled heap.  Concretely, each of ``conns`` connections keeps one
standing 5 s timeout; an ``activity`` event cancels it, re-arms it, and
reschedules itself 0.3-0.7 s later.  At steady state roughly one timer
is cancelled per dispatched event and the dead entries are spread
through the next 5 simulated seconds of queue.

Two drivers are measured on identical workloads:

* ``heap``  — the seed engine (:class:`HeapScheduler`) stepped the way
  the seed ``Simulator.run_until`` did: ``next_event_time()`` +
  ``run_next()`` per event (double head inspection, no compaction).
* ``wheel`` — the near-wheel/far-heap hybrid (:class:`Scheduler`)
  driven through the fused ``run_until`` dispatch loop.

Run standalone to refresh the tracked numbers::

    PYTHONPATH=src python benchmarks/bench_engine.py --out BENCH_engine.json

or under pytest-benchmark along with the figure benches (the pytest
path uses a reduced event count so the suite stays quick).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List

from repro.simnet.clock import SimClock
from repro.simnet.events import HeapScheduler, Scheduler

_INF = float("inf")

# Deterministic pseudo-randomness, precomputed so the generator costs
# nothing inside the measured region and both engines see the exact
# same jitter sequence.
_N_RANDS = 65536


def _make_rands(seed: int = 0x9E3779B97F4A7C15) -> List[float]:
    state = seed & 0xFFFFFFFFFFFFFFFF
    out = []
    for _ in range(_N_RANDS):
        state = (state * 6364136223846793005 + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
        out.append((state >> 11) / float(1 << 53))
    return out


_RANDS = _make_rands()


def _noop() -> None:
    pass


class _CancelHeavyWorkload:
    """``conns`` connections, each re-arming a standing timeout."""

    __slots__ = ("sched", "timeouts", "rand_idx")

    def __init__(self, sched, conns: int) -> None:
        self.sched = sched
        self.timeouts = [None] * conns
        self.rand_idx = 0
        rands = _RANDS
        j = 0
        for i in range(conns):
            self.timeouts[i] = sched.schedule(5.0, _noop)
            sched.schedule(0.3 + rands[j] * 0.4, self.activity, i)
            j = (j + 1) & (_N_RANDS - 1)
        self.rand_idx = j

    def activity(self, i: int) -> None:
        sched = self.sched
        self.timeouts[i].cancel()
        self.timeouts[i] = sched.schedule(5.0, _noop)
        j = self.rand_idx
        sched.schedule(0.3 + _RANDS[j] * 0.4, self.activity, i)
        self.rand_idx = (j + 1) & (_N_RANDS - 1)


def _drive_seed_style(sched, n_events: int) -> int:
    """The seed dispatch pattern: inspect the head, then pop it."""
    n = 0
    while n < n_events:
        t = sched.next_event_time()
        if t is None:
            break
        sched.run_next()
        n += 1
    return n


def _drive_fused(sched, n_events: int) -> int:
    dispatched, _truncated = sched.run_until(_INF, n_events)
    return dispatched


def _measure(
    engine: str, n_events: int, conns: int, repeats: int
) -> Dict[str, object]:
    """Best-of-``repeats`` wall time for one engine on a fresh workload."""
    best = _INF
    stats: Dict[str, object] = {}
    for _ in range(repeats):
        clock = SimClock()
        if engine == "heap":
            sched = HeapScheduler(clock)
            drive: Callable = _drive_seed_style
        else:
            sched = Scheduler(clock)
            drive = _drive_fused
        _CancelHeavyWorkload(sched, conns)
        t0 = time.perf_counter()
        dispatched = drive(sched, n_events)
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
            stats = {
                "dispatched": dispatched,
                "wall_s": round(dt, 4),
                "events_per_sec": round(dispatched / dt, 1),
                "sim_time_s": round(clock.now, 2),
                "pending_live": sched.pending,
                "pending_raw": sched.pending_raw,
                "cancelled_total": sched.cancelled_total,
                "compactions": sched.compactions,
            }
    return stats


def run_bench(
    n_events: int = 300_000, conns: int = 5_000, repeats: int = 3
) -> Dict[str, object]:
    heap = _measure("heap", n_events, conns, repeats)
    wheel = _measure("wheel", n_events, conns, repeats)
    ratio = wheel["events_per_sec"] / heap["events_per_sec"]
    return {
        "workload": {
            "name": "cancel_heavy_rearmed_timeouts",
            "n_events": n_events,
            "conns": conns,
            "repeats": repeats,
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "heap_seed_style": heap,
        "wheel_fused": wheel,
        "speedup": round(ratio, 3),
    }


def _format(result: Dict[str, object]) -> str:
    heap = result["heap_seed_style"]
    wheel = result["wheel_fused"]
    lines = [
        "engine bench (cancel-heavy re-armed timeouts, "
        f"{result['workload']['conns']:,} conns, "
        f"{result['workload']['n_events']:,} events):",
        f"  heap  (seed-style): {heap['events_per_sec']:>12,.0f} ev/s"
        f"  raw={heap['pending_raw']:,}",
        f"  wheel (fused):      {wheel['events_per_sec']:>12,.0f} ev/s"
        f"  raw={wheel['pending_raw']:,}"
        f"  compactions={wheel['compactions']}",
        f"  speedup:            {result['speedup']:>12.2f}x",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry point (reduced size so the bench suite stays quick)
# ----------------------------------------------------------------------
def test_engine_cancel_heavy_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_bench(n_events=120_000, conns=3_000, repeats=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(_format(result))
    # Loose floor only — the 2x acceptance number is checked on a quiet
    # machine via the standalone runner; CI boxes are too noisy to gate.
    assert result["speedup"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=300_000)
    parser.add_argument("--conns", type=int, default=5_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", default=None, help="write BENCH_engine.json-style output here"
    )
    args = parser.parse_args(argv)
    result = run_bench(args.events, args.conns, args.repeats)
    print(_format(result))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
