"""Figure 12: the churn binary matrix (Algorithm 4) and node lifetimes.

Paper: 3,034 nodes never left during the 60-day campaign; a majority of
nodes' presence lines end before the campaign does; some lines reappear
(rejoins); the mean node lifetime is 16.6 days — the §V basis for the
17-day tried-table horizon.
"""

from __future__ import annotations

from repro.core.reports import comparison_table
from repro.netmodel import calibration as cal
from repro.units import DAYS

from .conftest import BENCH_SCALE


def test_fig12_churn_matrix(benchmark, campaign):
    _scenario, result = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    matrix = result.churn_matrix()
    stats = result.churn_stats()
    s = BENCH_SCALE
    lifetime_days = stats.mean_lifetime / DAYS
    print()
    print(
        comparison_table(
            [
                ("unique reachable nodes", cal.CUMULATIVE_REACHABLE * s, stats.unique_nodes),
                ("always-on nodes", cal.ALWAYS_ON_NODES * s, stats.always_on),
                ("mean node lifetime (days)", cal.MEAN_NODE_LIFETIME_DAYS, lifetime_days),
                ("rejoining nodes", 0, stats.rejoining_nodes),
            ],
            title=f"Fig. 12 — churn matrix (scale {s}, {matrix.n_snapshots} snapshots)",
        )
    )
    occupancy = matrix.matrix.mean()
    print(f"matrix shape: {matrix.matrix.shape}, occupancy {occupancy:.2f}")

    # Shape: all four visual observations of Fig. 12 hold.
    assert stats.always_on > 0  # (4) a few lines span the whole x-axis
    assert stats.unique_nodes > 2 * stats.mean_alive_per_snapshot * 0.9  # (1) many newcomers
    assert stats.rejoining_nodes > 0  # (3) lines that reappear
    departed = stats.unique_nodes - stats.always_on
    assert departed > stats.unique_nodes * 0.5  # (2) most nodes leave
    # Calibration: counts/lifetime near the paper's.
    assert 0.5 < stats.unique_nodes / (cal.CUMULATIVE_REACHABLE * s) < 2.0
    assert 0.4 < stats.always_on / (cal.ALWAYS_ON_NODES * s) < 2.0
    assert 0.5 < lifetime_days / cal.MEAN_NODE_LIFETIME_DAYS < 2.0
