"""Figure 5: responsive (VER-answering) unreachable nodes.

Paper: ≈54K responsive addresses per experiment (27.69% of the snapshot
pool), 163,496 cumulative (23.54% of all unreachable addresses).
"""

from __future__ import annotations

import numpy as np

from repro.core.reports import comparison_table, series_preview
from repro.netmodel import calibration as cal

from .conftest import BENCH_SCALE


def test_fig05_responsive(benchmark, campaign):
    _scenario, result = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    series = result.fig5_series()
    per_snapshot = series["per_snapshot"]
    cumulative = series["cumulative"]
    s = BENCH_SCALE
    cumulative_share = len(result.cumulative_responsive) / len(
        result.cumulative_unreachable
    )
    snapshot_shares = [
        len(snap.responsive) / len(snap.unreachable)
        for snap in result.snapshots
        if snap.unreachable
    ]
    print()
    print(
        comparison_table(
            [
                (
                    "responsive / snapshot",
                    cal.RESPONSIVE_PER_SNAPSHOT * s,
                    float(np.mean(per_snapshot)),
                ),
                (
                    "cumulative responsive",
                    cal.CUMULATIVE_RESPONSIVE * s,
                    cumulative[-1],
                ),
                (
                    "responsive share (cumulative)",
                    cal.RESPONSIVE_SHARE_CUMULATIVE,
                    cumulative_share,
                ),
                (
                    "responsive share (per snapshot)",
                    cal.RESPONSIVE_SHARE_PER_SNAPSHOT,
                    float(np.mean(snapshot_shares)),
                ),
            ],
            title=f"Fig. 5 — responsive nodes (scale {s})",
        )
    )
    print(f"per-snapshot: {series_preview(per_snapshot)}")
    print(f"cumulative:   {series_preview(cumulative)}")

    assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))
    assert 0.5 < np.mean(per_snapshot) / (cal.RESPONSIVE_PER_SNAPSHOT * s) < 2.0
    assert 0.5 < cumulative[-1] / (cal.CUMULATIVE_RESPONSIVE * s) < 2.0
    # Responsive stays a minority of the unreachable pool, near ~25%.
    assert 0.12 < cumulative_share < 0.45
