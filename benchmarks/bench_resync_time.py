"""§IV-D text statistic: resynchronization time after a restart.

Paper: a restarted (previously synchronized) node took 11 min 14 s to
regain the ability to relay blocks — mostly spent re-establishing stable
outgoing connections through polluted tables and waiting to synchronize
on the latest block.
"""

from __future__ import annotations

from repro.core import run_resync_experiment
from repro.core.reports import comparison_table
from repro.netmodel import calibration as cal
from repro.units import format_duration


def test_resync_time(benchmark, warm_protocol):
    result = benchmark.pedantic(
        lambda: run_resync_experiment(warm_protocol, max_wait=3600.0),
        rounds=1,
        iterations=1,
    )
    assert result.resync_seconds is not None
    print()
    print(
        comparison_table(
            [
                ("resync-to-relay time (s)", cal.RESYNC_TIME_SECONDS, result.resync_seconds),
            ],
            title="§IV-D — restart-to-relay time",
        )
    )
    print(
        f"measured {format_duration(result.resync_seconds)} "
        f"(paper: {format_duration(cal.RESYNC_TIME_SECONDS)})"
    )
    # Minutes, not seconds: dominated by connection recovery plus the
    # wait for a relayable block (same order as the paper's 11 min).
    assert 30.0 < result.resync_seconds < 2400.0
