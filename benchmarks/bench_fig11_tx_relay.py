"""Figure 11: transaction relaying time (receipt → relay to last connection).

Paper: mean 0.45 s, max 8 s, over two days of traffic at the same 8+17
connection node.  Transactions trickle behind Poisson inv timers, so the
last connection waits for the slowest timer plus any queueing.
"""

from __future__ import annotations

from repro.core.reports import comparison_table, series_preview
from repro.netmodel import calibration as cal


def test_fig11_tx_relay(benchmark, relay_result):
    result = benchmark.pedantic(lambda: relay_result, rounds=1, iterations=1)
    summary = result.tx_summary(quantized=True)
    raw = result.tx_summary(quantized=False)
    print()
    print(
        comparison_table(
            [
                ("mean tx relaying time (s)", cal.TX_RELAY_MEAN, summary.mean),
                ("max tx relaying time (s)", cal.TX_RELAY_MAX, summary.maximum),
                ("min tx relaying time (s)", 0.0, summary.minimum),
                ("transactions measured", 0, summary.count),
            ],
            title="Fig. 11 — tx relaying time (1 s log quantization)",
        )
    )
    print(f"raw mean {raw.mean:.2f}s / raw max {raw.maximum:.1f}s")
    print(f"series: {series_preview(result.tx_relay_times[:2000])}")

    assert summary.count >= 500
    # Mean within ~2.5x of the paper; sub-second typical, seconds tail.
    assert 0.1 < summary.mean < 1.2
    assert summary.mean < result.block_summary().mean  # txs faster than blocks
    assert 2.0 <= summary.maximum <= 25.0
