"""Run-store throughput: simulator checkpoints and blob I/O.

Two costs decide whether per-snapshot checkpointing is affordable on a
real campaign:

* **snapshot/restore** — serializing a warmed protocol world (event
  queue, RNG streams, nodes, addrman, sockets) through the canonical
  checkpoint pickler, and rebuilding it.  Measured per engine backend,
  since the wheel and heap schedulers pickle different queue layouts.
* **blob put/get** — content-addressed writes (hash + atomic rename)
  and verified reads at checkpoint-sized payloads.

Run standalone to refresh the tracked numbers::

    PYTHONPATH=src python benchmarks/bench_store.py --out BENCH_store.json

or under pytest-benchmark along with the figure benches (the pytest
path uses a smaller world so the suite stays quick).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict

from repro.netmodel.scenario import ProtocolConfig, ProtocolScenario
from repro.simnet.simulator import Simulator
from repro.store import BlobStore

_INF = float("inf")


def _bench_snapshot(
    engine: str, n_reachable: int, warmup: float, repeats: int
) -> Dict[str, object]:
    """Best-of-``repeats`` snapshot + restore times for one engine."""
    import os

    os.environ["REPRO_ENGINE"] = engine
    try:
        scenario = ProtocolScenario(
            ProtocolConfig(seed=17, n_reachable=n_reachable)
        )
        scenario.sim.run_for(warmup)
        best_dump = _INF
        best_load = _INF
        blob = b""
        for _ in range(repeats):
            t0 = time.perf_counter()
            blob = scenario.sim.snapshot()
            dt = time.perf_counter() - t0
            best_dump = min(best_dump, dt)
            t0 = time.perf_counter()
            restored = Simulator.restore(blob)
            dt = time.perf_counter() - t0
            best_load = min(best_load, dt)
        # restored world must actually be runnable
        restored.run_for(10.0)
        return {
            "snapshot_bytes": len(blob),
            "dump_s": round(best_dump, 4),
            "load_s": round(best_load, 4),
            "dump_mb_per_s": round(len(blob) / best_dump / 1e6, 1),
            "load_mb_per_s": round(len(blob) / best_load / 1e6, 1),
        }
    finally:
        os.environ.pop("REPRO_ENGINE", None)


def _bench_blobs(
    payload_bytes: int, count: int, repeats: int
) -> Dict[str, object]:
    """Put/get throughput at checkpoint-sized payloads."""
    payloads = [
        bytes([i & 0xFF]) * payload_bytes for i in range(count)
    ]
    best_put = _INF
    best_get = _INF
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as tmp:
            store = BlobStore(tmp)
            t0 = time.perf_counter()
            digests = [store.put(p) for p in payloads]
            best_put = min(best_put, time.perf_counter() - t0)
            t0 = time.perf_counter()
            for digest in digests:
                store.get(digest)
            best_get = min(best_get, time.perf_counter() - t0)
    total = payload_bytes * count
    return {
        "payload_bytes": payload_bytes,
        "count": count,
        "put_s": round(best_put, 4),
        "get_s": round(best_get, 4),
        "put_mb_per_s": round(total / best_put / 1e6, 1),
        "get_mb_per_s": round(total / best_get / 1e6, 1),
    }


def run_bench(
    n_reachable: int = 60,
    warmup: float = 1800.0,
    payload_bytes: int = 1 << 20,
    blob_count: int = 32,
    repeats: int = 3,
) -> Dict[str, object]:
    return {
        "workload": {
            "name": "store_checkpoint_roundtrip",
            "n_reachable": n_reachable,
            "warmup_sim_s": warmup,
            "repeats": repeats,
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "snapshot_wheel": _bench_snapshot(
            "wheel", n_reachable, warmup, repeats
        ),
        "snapshot_heap": _bench_snapshot(
            "heap", n_reachable, warmup, repeats
        ),
        "blobs": _bench_blobs(payload_bytes, blob_count, repeats),
    }


def _format(result: Dict[str, object]) -> str:
    wheel = result["snapshot_wheel"]
    heap = result["snapshot_heap"]
    blobs = result["blobs"]
    lines = [
        "store bench "
        f"({result['workload']['n_reachable']} reachable nodes, "
        f"{result['workload']['warmup_sim_s']:.0f}s warmed world):",
        f"  snapshot wheel: {wheel['snapshot_bytes']:>10,} B  "
        f"dump {wheel['dump_s']*1e3:7.1f} ms  "
        f"load {wheel['load_s']*1e3:7.1f} ms",
        f"  snapshot heap:  {heap['snapshot_bytes']:>10,} B  "
        f"dump {heap['dump_s']*1e3:7.1f} ms  "
        f"load {heap['load_s']*1e3:7.1f} ms",
        f"  blobs ({blobs['count']} x {blobs['payload_bytes']:,} B): "
        f"put {blobs['put_mb_per_s']:,.0f} MB/s  "
        f"get {blobs['get_mb_per_s']:,.0f} MB/s",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry point (reduced size so the bench suite stays quick)
# ----------------------------------------------------------------------
def test_store_checkpoint_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_bench(
            n_reachable=25, warmup=600.0, payload_bytes=1 << 18,
            blob_count=8, repeats=2,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(_format(result))
    # Sanity floors only — absolute numbers are machine-dependent and
    # recorded via the standalone runner, never gated in CI.
    assert result["snapshot_wheel"]["snapshot_bytes"] > 10_000
    assert result["blobs"]["put_mb_per_s"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=60)
    parser.add_argument("--warmup", type=float, default=1800.0)
    parser.add_argument("--blob-kb", type=int, default=1024)
    parser.add_argument("--blob-count", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", default=None, help="write BENCH_store.json-style output here"
    )
    args = parser.parse_args(argv)
    result = run_bench(
        n_reachable=args.nodes,
        warmup=args.warmup,
        payload_bytes=args.blob_kb * 1024,
        blob_count=args.blob_count,
        repeats=args.repeats,
    )
    print(_format(result))
    if args.out:
        out_path = Path(args.out)
        with out_path.open("w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
