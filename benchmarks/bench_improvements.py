"""§V ablation: the proposed Bitcoin Core refinements.

The paper proposes (1) answering GETADDR from the tried table only,
(2) shortening the tried horizon from 30 to 17 days, and (3) prioritizing
block relay to outbound connections.  This bench toggles the policies and
measures what each is supposed to move:

* tried-only + 17-day horizon → outgoing-connection success rate (§IV-B);
* block priority → block relaying time to reachable connections (§IV-C);
* all three → network synchronization under 2020-level churn (Fig. 1).
"""

from __future__ import annotations

import pytest

from repro.bitcoin import NodeConfig, PolicyConfig
from repro.core import RelayExperimentConfig, run_connection_success
from repro.core.reports import format_table
from repro.netmodel import ProtocolConfig, ProtocolScenario


def _success_rate(policy: PolicyConfig, seed: int = 41) -> float:
    scenario = ProtocolScenario(
        ProtocolConfig(
            n_reachable=50,
            seed=seed,
            mining=False,
            node_config=NodeConfig(policies=policy),
        )
    )
    scenario.start(warmup=1500.0)
    result = run_connection_success(
        scenario,
        runs=3,
        duration=300.0,
        observer_config=NodeConfig(
            policies=policy, track_connection_attempts=True
        ),
    )
    return result.overall_rate


def test_addressing_refinements_raise_success_rate(benchmark):
    def run():
        return {
            "baseline": _success_rate(PolicyConfig()),
            "tried-only": _success_rate(PolicyConfig(addr_from_tried_only=True)),
            "tried-only+17d": _success_rate(
                PolicyConfig(addr_from_tried_only=True, tried_horizon_days=17.0)
            ),
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ("policy", "success rate"),
            [(name, rate) for name, rate in rates.items()],
            title="§V ablation — outgoing-connection success rate",
        )
    )
    assert rates["tried-only"] > rates["baseline"]
    assert rates["tried-only+17d"] >= rates["tried-only"] * 0.8


def test_block_priority_reduces_relay_delay(benchmark):
    def run():
        results = {}
        for label, prioritize in (("baseline", False), ("block-prio", True)):
            config = RelayExperimentConfig(
                duration=2 * 3600.0, n_reachable=25, seed=47
            )
            from repro.core.relay_experiments import build_relay_scenario

            scenario, target, clients = build_relay_scenario(
                config,
                policies=PolicyConfig(prioritize_block_relay=prioritize),
            )
            scenario.start()
            target.start()
            for client in clients:
                client.start()
            scenario.sim.run_for(config.warmup)
            target.relay_tracker._records.clear()  # noqa: SLF001
            scenario.sim.run_for(config.duration)
            times = target.relay_tracker.relaying_times(
                "block", cutoff=config.wave_cutoff
            )
            # §V prioritizes *reachable* (outbound) connections: measure
            # the time to finish relaying to outbound peers.
            outbound_times = []
            for record in target.relay_tracker.records("block"):
                if record.enqueued_to:
                    value = record.relaying_time_within(10.0)
                    if value is not None:
                        outbound_times.append(value)
            results[label] = (
                sum(times) / len(times) if times else float("nan"),
                len(times),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ("policy", "mean relay time (s)", "blocks"),
            [(name, mean, count) for name, (mean, count) in results.items()],
            title="§V ablation — block relaying time",
        )
    )
    base_mean, base_count = results["baseline"]
    prio_mean, prio_count = results["block-prio"]
    assert base_count >= 8 and prio_count >= 8
    # Front-of-queue blocks should not relay slower than baseline.
    assert prio_mean <= base_mean * 1.25


@pytest.mark.slow
def test_improved_policies_raise_sync(benchmark):
    from repro.core import SyncCampaignConfig

    def run():
        results = {}
        for label, policy in (
            ("baseline", PolicyConfig()),
            ("improved", PolicyConfig.improved()),
        ):
            config = SyncCampaignConfig(
                n_reachable=60,
                churn_per_10min=12.0,  # 2020-like churn
                duration=2 * 3600.0,
                seed=49,
            )
            scenario_config = ProtocolConfig(
                seed=config.seed,
                n_reachable=config.n_reachable,
                churn_per_10min=config.churn_per_10min,
                block_interval=config.block_interval,
                pre_mined_blocks=config.pre_mined_blocks,
                node_config=NodeConfig(policies=policy),
            )
            from repro.core import SyncMonitor

            scenario = ProtocolScenario(scenario_config)
            scenario.start(warmup=config.warmup)
            monitor = SyncMonitor(
                scenario,
                period=config.sample_period,
                poll_spread=config.poll_spread,
            )
            scenario.sim.run_for(config.duration)
            values = monitor.sync_percents()
            results[label] = sum(values) / len(values)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ("policy", "mean sync %"),
            list(results.items()),
            title="§V ablation — synchronization under 2020-level churn",
        )
    )
    # The refinements should recover part of the churn-induced loss.
    assert results["improved"] > results["baseline"] - 2.0
