"""Table I: top ASes hosting reachable/unreachable/responsive nodes.

Paper: reachable spread over 2,000 ASes (25 cover 50%), unreachable over
8,494 (36 cover 50%), responsive over 4,453 (24 cover 50%); only 10 ASes
appear in all three top-20 lists; AS4134 ranks ~20th by reachable nodes
but 2nd by responsive nodes (§IV-A.1 routing-attack revisit).
"""

from __future__ import annotations

from repro.core import common_top_ases, plan_hijack, target_shifts
from repro.core.reports import comparison_table, format_table
from repro.netmodel import calibration as cal


def test_table1_as_hosting(benchmark, campaign):
    scenario, result = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    reports = result.hosting_reports(scenario.universe.asn_of)
    reachable = reports["reachable"]
    unreachable = reports["unreachable"]
    responsive = reports["responsive"]

    rows = []
    for rank in range(1, 21):
        row = []
        for report in (reachable, unreachable, responsive):
            top = report.top(20)
            if rank <= len(top):
                row.extend([top[rank - 1].asn, round(top[rank - 1].percent, 2)])
            else:
                row.extend(["-", "-"])
        rows.append([rank] + row)
    print()
    print(
        format_table(
            ("rank", "ASN(Rb)", "%Rb", "ASN(Urb)", "%Urb", "ASN(Resp)", "%Resp"),
            rows,
            title="Table I — top-20 hosting ASes (measured)",
        )
    )
    common = common_top_ases(
        [reachable, unreachable, responsive], k=20
    )
    print(
        comparison_table(
            [
                ("k50 reachable", cal.AS_50PCT_REACHABLE, reachable.k_to_cover_half()),
                ("k50 unreachable", cal.AS_50PCT_UNREACHABLE, unreachable.k_to_cover_half()),
                ("k50 responsive", cal.AS_50PCT_RESPONSIVE, responsive.k_to_cover_half()),
                ("common top-20 ASes", 10, len(common)),
            ],
            title="Table I — concentration statistics",
        )
    )

    # Concentration statistics near the paper's.
    assert abs(reachable.k_to_cover_half() - cal.AS_50PCT_REACHABLE) <= 12
    assert abs(unreachable.k_to_cover_half() - cal.AS_50PCT_UNREACHABLE) <= 15
    assert abs(responsive.k_to_cover_half() - cal.AS_50PCT_RESPONSIVE) <= 12
    # Partial top-20 overlap across classes, as in Table I.
    assert 5 <= len(common) <= 16

    # The paper's AS4134 example: low reachable rank, top-3 responsive.
    shifts = target_shifts(reachable, responsive, k=3)
    assert any(
        shift.rank_by_reachable is None or shift.rank_by_reachable > shift.rank_by_responsive
        for shift in shifts
    )

    # Hijack plans: isolating 50% takes about the paper's AS counts.
    plan = plan_hijack(reachable, 0.5)
    assert plan.isolated_share >= 0.5
    assert len(plan.hijacked_ases) == reachable.k_to_cover_half()
