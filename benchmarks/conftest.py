"""Shared fixtures for the per-figure benchmark harnesses.

Several figures read different projections of the same 60-day crawl
campaign (Figs. 3, 4, 5, 8, 12, 13, Table I, the ADDR composition), so the
campaign is executed once per session; likewise the Fig. 10/11 relay
experiment and the warm protocol world used by Figs. 6/7 and the resync
measurement.

Scale knobs (environment variables):

``REPRO_BENCH_SCALE``      population scale of the crawl campaign (default 0.02)
``REPRO_BENCH_SNAPSHOTS``  crawl snapshots (default 30)
``REPRO_BENCH_FAST``       set to 1 to shrink the protocol experiments
"""

from __future__ import annotations

import os

import pytest

from repro.core import (
    CampaignRunner,
    RelayExperimentConfig,
    SyncCampaignConfig,
    run_2019_vs_2020,
    run_relay_experiment,
)
from repro.netmodel import (
    LongitudinalConfig,
    LongitudinalScenario,
    ProtocolConfig,
    ProtocolScenario,
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
BENCH_SNAPSHOTS = int(os.environ.get("REPRO_BENCH_SNAPSHOTS", "30"))
FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"


@pytest.fixture(scope="session")
def campaign():
    """The 60-day crawl campaign, run once (Figs. 3-5, 8, 12, 13, Table I)."""
    scenario = LongitudinalScenario(
        LongitudinalConfig(
            scale=BENCH_SCALE,
            snapshots=BENCH_SNAPSHOTS,
            seed=101,
            # The Fig. 8 distribution needs the full flooder cohort, not a
            # scale-rounded count of ~1; volumes stay scale-proportional.
            flooder_count=73,
        )
    )
    runner = CampaignRunner(scenario)
    result = runner.run()
    return scenario, result


@pytest.fixture(scope="session")
def relay_result():
    """The Fig. 10/11 measurement node run."""
    duration = 2 * 3600.0 if FAST else 4 * 3600.0
    return run_relay_experiment(
        RelayExperimentConfig(duration=duration, n_reachable=30, seed=11)
    )


@pytest.fixture(scope="session")
def warm_protocol():
    """A warmed-up live network for the Fig. 6/7 and resync experiments."""
    scenario = ProtocolScenario(
        ProtocolConfig(
            n_reachable=60,
            seed=5,
            block_interval=600.0,
            # Light live churn: standing nodes occasionally depart, so an
            # observer's connections drop and refill as in Fig. 6.
            churn_per_10min=3.0,
        )
    )
    scenario.start(warmup=1200.0)
    return scenario


@pytest.fixture(scope="session")
def sync_campaigns():
    """The Fig. 1 contrast (2019-like vs 2020-like churn)."""
    duration = 1.5 * 3600.0 if FAST else 3 * 3600.0
    base = SyncCampaignConfig(duration=duration, seed=21)
    return run_2019_vs_2020(base)
