"""Paper-scale protocol scenarios on the hybrid node tier.

The paper's protocol experiments run against the real network's shape:
~10K reachable nodes over a ~24x larger unreachable cloud.  The seed's
`ProtocolScenario` topped out around 150 full nodes because every
unreachable address was priced like a data-plane entry and every node
carried a ``__dict__``-heavy object graph.  The hybrid tier changes the
price list: the measured vantage and the whole reachable network stay
full-fidelity `BitcoinNode`s, while the unreachable cloud becomes
`LightNode` endpoints with O(1) per-node state and zero RNG draws —
bit-identical figures (pinned in `tests/test_node_tiers.py`), ~20x+
less memory per cloud address.

Two measurements:

* **per-node memory** — tracemalloc price of a bootstrapped full-tier
  node vs a light-tier node (the acceptance bar is light <= 1/20 full);
* **paper-scale run** — a 10x-larger network (default 1,500 full-tier
  reachable nodes plus the proportional ~29K-endpoint unreachable
  cloud) built, warmed up, and run, reporting wall time, dispatched
  events, peak RSS, and the tier census.

Run standalone to refresh the tracked numbers::

    PYTHONPATH=src python benchmarks/bench_scale.py --out BENCH_scale.json

CI runs a shortened variant with ``--rss-ceiling-mb`` as a regression
gate; pytest runs a further reduced smoke (memory ratio + a small
hybrid run) so the bench suite stays quick.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import random
import sys
import time
import tracemalloc
from typing import Dict, Optional

from repro.bitcoin.config import NodeConfig
from repro.bitcoin.light import LightNode
from repro.bitcoin.node import BitcoinNode
from repro.netmodel.scenario import ProtocolConfig, ProtocolScenario
from repro.perf import read_memory
from repro.simnet.addresses import NetAddr
from repro.simnet.simulator import Simulator

#: The seed repo's ProtocolScenario sizing — the "1x" the bench scales from.
BASELINE_N_REACHABLE = 150


# ----------------------------------------------------------------------
# Per-node memory price
# ----------------------------------------------------------------------
def _bootstrap_table(rng: random.Random, reach: int = 60, unreach: int = 340):
    """A scenario-shaped addrman seed: 15/85 reachable/unreachable mix."""
    reachable = [NetAddr(ip=0x0A000000 + i) for i in range(1, 2 * reach)]
    unreachable = [NetAddr(ip=0xAC100000 + i) for i in range(1, 4 * unreach)]
    return rng.sample(reachable, reach) + rng.sample(unreachable, unreach)


def measure_per_node_memory(
    full_count: int = 100, light_count: int = 2000
) -> Dict[str, object]:
    """Tracemalloc bytes per node, full tier vs light tier.

    Full nodes are bootstrapped the way scenarios bootstrap them (a
    polluted ~400-entry addrman), because that bucketed table *is* the
    dominant per-node cost the light tier exists to avoid.
    """
    rng = random.Random(1)
    sim = Simulator(seed=1)
    tables = [_bootstrap_table(rng) for _ in range(full_count)]
    addrs = [NetAddr(ip=0xC0000000 + i) for i in range(full_count + light_count)]

    gc.collect()
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    full_nodes = []
    for i in range(full_count):
        node = BitcoinNode(sim, addrs[i], NodeConfig())
        node.bootstrap(tables[i])
        full_nodes.append(node)
    after_full, _ = tracemalloc.get_traced_memory()
    light_nodes = [
        LightNode(sim, addrs[full_count + i]) for i in range(light_count)
    ]
    after_light, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    full_bytes = (after_full - before) / full_count
    light_bytes = (after_light - after_full) / light_count
    del full_nodes, light_nodes
    return {
        "full_count": full_count,
        "light_count": light_count,
        "full_node_bytes": round(full_bytes),
        "light_node_bytes": round(light_bytes),
        "full_to_light_ratio": round(full_bytes / light_bytes, 1),
    }


# ----------------------------------------------------------------------
# The paper-scale run
# ----------------------------------------------------------------------
def run_paper_scale(
    n_reachable: int = 10 * BASELINE_N_REACHABLE,
    warmup: float = 15.0,
    duration: float = 20.0,
    seed: int = 5,
) -> Dict[str, object]:
    """Build and run one hybrid-fidelity scenario at ``n_reachable``."""
    config = ProtocolConfig(
        seed=seed,
        n_reachable=n_reachable,
        fidelity="hybrid",
        churn_per_10min=6.0,
        pre_mined_blocks=10,
    )
    t0 = time.perf_counter()
    scenario = ProtocolScenario(config)
    build_s = time.perf_counter() - t0
    census_cloud = len(scenario.light_cloud)

    t1 = time.perf_counter()
    scenario.start(warmup=warmup)
    warmup_s = time.perf_counter() - t1

    t2 = time.perf_counter()
    result = scenario.sim.run_for(duration)
    run_s = time.perf_counter() - t2

    # collect=True: rss_bytes is the retained end-of-run footprint,
    # peak_rss_bytes the transient high-water mark — two different
    # regression signals (they used to read identically because the
    # sample landed exactly at the peak).
    memory = read_memory(count_objects=True, collect=True)
    census = scenario.tier_census()
    return {
        "n_reachable": n_reachable,
        "scale_vs_baseline": round(n_reachable / BASELINE_N_REACHABLE, 2),
        "light_endpoints": census_cloud,
        "tier_census": census,
        "warmup_sim_s": warmup,
        "measured_sim_s": duration,
        "build_wall_s": round(build_s, 1),
        "warmup_wall_s": round(warmup_s, 1),
        "run_wall_s": round(run_s, 1),
        "events_dispatched": int(result),
        "events_per_sec": round(int(result) / run_s, 1) if run_s > 0 else 0.0,
        "sync_fraction": round(scenario.sync_fraction(), 4),
        "running_full_nodes": len(scenario.running_nodes()),
        "peak_rss_bytes": memory.peak_rss_bytes,
        "rss_bytes": memory.rss_bytes,
        "live_objects": memory.live_objects,
    }


def run_bench(
    n_reachable: int = 10 * BASELINE_N_REACHABLE,
    warmup: float = 15.0,
    duration: float = 20.0,
    seed: int = 5,
    extra_nodes: Optional[int] = None,
    extra_warmup: float = 10.0,
    extra_duration: float = 10.0,
) -> Dict[str, object]:
    per_node = measure_per_node_memory()
    scale_run = run_paper_scale(
        n_reachable=n_reachable, warmup=warmup, duration=duration, seed=seed
    )
    result: Dict[str, object] = {
        "workload": {
            "name": "hybrid_tier_paper_scale",
            "baseline_n_reachable": BASELINE_N_REACHABLE,
            "n_reachable": n_reachable,
            "warmup_sim_s": warmup,
            "duration_sim_s": duration,
            "seed": seed,
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "per_node_memory": per_node,
        "paper_scale_run": scale_run,
    }
    if extra_nodes:
        # A second, larger scale point (shorter sim windows: the point
        # is throughput-at-size and build/memory price, not duration).
        result["extra_scale_run"] = run_paper_scale(
            n_reachable=extra_nodes,
            warmup=extra_warmup,
            duration=extra_duration,
            seed=seed,
        )
    return result


def compare_to_baseline(
    result: Dict[str, object],
    baseline_path: str,
    warn_ratio: float,
    fail_ratio: float,
) -> int:
    """Events/s regression gate against a committed BENCH_scale.json.

    Returns an exit code: 0 (ok or merely warned) or 1 (measured
    throughput below ``fail_ratio`` x the baseline figure).  Ratios are
    deliberately loose — CI runners are slower and noisier than the
    machine that recorded the baseline — so the warn line catches drift
    and the fail line only catches a broken hot path.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    base_evps = baseline["paper_scale_run"]["events_per_sec"]
    measured = result["paper_scale_run"]["events_per_sec"]
    ratio = measured / base_evps if base_evps else float("inf")
    print(
        f"baseline comparison: {measured:,.0f} ev/s vs "
        f"{base_evps:,.0f} ev/s recorded ({ratio:.2f}x)"
    )
    if ratio < fail_ratio:
        print(
            f"FAIL: events/s fell below {fail_ratio}x the baseline "
            f"({ratio:.2f}x) — hot-path regression"
        )
        return 1
    if ratio < warn_ratio:
        print(
            f"WARNING: events/s below {warn_ratio}x the baseline "
            f"({ratio:.2f}x) — investigate before it reaches the fail line"
        )
    return 0


def _format_run(run: Dict[str, object]) -> list:
    peak = run["peak_rss_bytes"] or 0
    rss = run["rss_bytes"] or 0
    return [
        f"  build/warmup/run wall  {run['build_wall_s']:.0f}"
        f" / {run['warmup_wall_s']:.0f} / {run['run_wall_s']:.0f} s",
        f"  events         {run['events_dispatched']:>12,}"
        f"  ({run['events_per_sec']:,.0f} ev/s)",
        f"  RSS end/peak   {rss / 1e6:>12,.0f} MB / {peak / 1e6:,.0f} MB",
        f"  sync fraction  {run['sync_fraction']:>12.3f}"
        f"  ({run['running_full_nodes']:,} full nodes running)",
    ]


def _format(result: Dict[str, object]) -> str:
    mem = result["per_node_memory"]
    run = result["paper_scale_run"]
    lines = [
        f"scale bench ({run['n_reachable']:,} full-tier reachable, "
        f"{run['light_endpoints']:,} light endpoints, "
        f"{run['scale_vs_baseline']}x baseline):",
        f"  full node      {mem['full_node_bytes']:>12,} B",
        f"  light node     {mem['light_node_bytes']:>12,} B"
        f"  (1/{mem['full_to_light_ratio']:.0f} of full)",
    ]
    lines.extend(_format_run(run))
    extra = result.get("extra_scale_run")
    if extra:
        lines.append(
            f"extra scale point ({extra['n_reachable']:,} full-tier, "
            f"{extra['light_endpoints']:,} light endpoints):"
        )
        lines.extend(_format_run(extra))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry point (reduced size so the bench suite stays quick)
# ----------------------------------------------------------------------
def test_hybrid_tier_scale_smoke(benchmark):
    result = benchmark.pedantic(
        lambda: run_bench(n_reachable=200, warmup=20.0, duration=30.0),
        rounds=1,
        iterations=1,
    )
    print()
    print(_format(result))
    mem = result["per_node_memory"]
    # The acceptance bar: a light node costs at most 1/20 of a full node.
    assert mem["full_to_light_ratio"] >= 20.0
    run = result["paper_scale_run"]
    assert run["light_endpoints"] > run["n_reachable"]
    assert run["events_dispatched"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=10 * BASELINE_N_REACHABLE)
    parser.add_argument("--warmup", type=float, default=15.0)
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument(
        "--rss-ceiling-mb", type=float, default=None,
        help="fail (exit 1) if peak RSS exceeds this many MB",
    )
    parser.add_argument(
        "--out", default=None, help="write BENCH_scale.json-style output here"
    )
    parser.add_argument(
        "--extra-nodes", type=int, default=None, metavar="N",
        help="also run a second scale point at N reachable nodes",
    )
    parser.add_argument("--extra-warmup", type=float, default=10.0)
    parser.add_argument("--extra-duration", type=float, default=10.0)
    parser.add_argument(
        "--baseline", default=None, metavar="BENCH_scale.json",
        help="compare events/s against this committed bench file",
    )
    parser.add_argument(
        "--warn-ratio", type=float, default=0.75,
        help="warn when events/s falls below this fraction of the baseline",
    )
    parser.add_argument(
        "--fail-ratio", type=float, default=0.5,
        help="exit 1 when events/s falls below this fraction of the baseline",
    )
    args = parser.parse_args(argv)
    result = run_bench(
        args.nodes, args.warmup, args.duration, args.seed,
        extra_nodes=args.extra_nodes,
        extra_warmup=args.extra_warmup,
        extra_duration=args.extra_duration,
    )
    print(_format(result))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    status = 0
    ratio = result["per_node_memory"]["full_to_light_ratio"]
    if ratio < 20.0:
        print(f"FAIL: light node costs more than 1/20 of a full node ({ratio})")
        status = 1
    if args.rss_ceiling_mb is not None:
        peak = result["paper_scale_run"]["peak_rss_bytes"]
        if peak is not None and peak > args.rss_ceiling_mb * 1e6:
            print(
                f"FAIL: peak RSS {peak / 1e6:,.0f} MB exceeds ceiling "
                f"{args.rss_ceiling_mb:,.0f} MB"
            )
            status = 1
    if args.baseline is not None:
        status = max(
            status,
            compare_to_baseline(
                result, args.baseline, args.warn_ratio, args.fail_ratio
            ),
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
