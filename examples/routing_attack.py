#!/usr/bin/env python3
"""Revisiting the Bitcoin routing attack with a full network view (§IV-A.1).

Prior partitioning attacks [Apostolaki et al., Saad et al.] planned AS
hijacks against the *reachable* network only.  The paper shows the target
list changes once the unreachable and responsive populations count —
AS4134 hosts just 0.76% of reachable nodes (rank ~20) but 6.18% of
responsive nodes (rank 1-2), making it a far more attractive hijack
target than the reachable view suggests.

This example maps a scaled network, prints the Table-I style hosting
report, plans 50%-isolation hijacks against each view, and lists the ASes
whose attack rank improves the most.  It then flips from analysis to
attack: an AS-scoped :mod:`repro.adversary` plan launches ADDR flooders
from the top responsive-view AS and a second campaign shows the
detector attributing the flood to that AS (the paper found 59% of its
73 flooders in AS3320).

Run:  python examples/routing_attack.py  [--scale 0.02]
"""

from __future__ import annotations

import argparse

from repro.adversary import AttackPlan, AttackScope, AttackerSpec
from repro.core import (
    CampaignRunner,
    common_top_ases,
    plan_hijack,
    score_detection,
    target_shifts,
)
from repro.core.reports import format_table
from repro.netmodel import LongitudinalConfig, LongitudinalScenario
from repro.netmodel import calibration as cal


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--snapshots", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Mapping the network (scale {args.scale}, {args.snapshots} snapshots)...")
    scenario = LongitudinalScenario(
        LongitudinalConfig(
            scale=args.scale, snapshots=args.snapshots, seed=args.seed
        )
    )
    result = CampaignRunner(scenario).run()
    reports = result.hosting_reports(scenario.universe.asn_of)
    reachable = reports["reachable"]
    unreachable = reports["unreachable"]
    responsive = reports["responsive"]

    rows = []
    for rank in range(1, 11):
        row = [rank]
        for report in (reachable, unreachable, responsive):
            top = report.top(10)
            entry = top[rank - 1]
            row.extend([entry.asn, round(entry.percent, 2)])
        rows.append(row)
    print()
    print(
        format_table(
            ("rank", "ASN(Rb)", "%Rb", "ASN(Urb)", "%Urb", "ASN(Resp)", "%Resp"),
            rows,
            title="Top-10 hosting ASes per node class (Table I style)",
        )
    )

    print()
    print(
        format_table(
            ("view", "distinct ASes", "ASes to host 50%", "paper"),
            [
                ("reachable", reachable.distinct_ases,
                 reachable.k_to_cover_half(), cal.AS_50PCT_REACHABLE),
                ("unreachable", unreachable.distinct_ases,
                 unreachable.k_to_cover_half(), cal.AS_50PCT_UNREACHABLE),
                ("responsive", responsive.distinct_ases,
                 responsive.k_to_cover_half(), cal.AS_50PCT_RESPONSIVE),
            ],
            title="Concentration per network view",
        )
    )
    common = common_top_ases([reachable, unreachable, responsive], k=20)
    print(f"ASes common to all three top-20 lists: {len(common)} (paper: 10)")

    print()
    plan_rb = plan_hijack(reachable, 0.5)
    plan_resp = plan_hijack(responsive, 0.5)
    print(
        f"Hijack plan vs reachable view:  {len(plan_rb.hijacked_ases)} ASes "
        f"isolate {plan_rb.isolated_share:.0%} of reachable nodes"
    )
    print(
        f"Hijack plan vs responsive view: {len(plan_resp.hijacked_ases)} ASes "
        f"isolate {plan_resp.isolated_share:.0%} of responsive nodes"
    )
    overlap = set(plan_rb.hijacked_ases) & set(plan_resp.hijacked_ases)
    print(f"Targets shared between the two plans: {len(overlap)}")

    print()
    shifts = [
        shift
        for shift in target_shifts(reachable, responsive, k=10)
        if shift.rank_by_reachable is None or shift.rank_by_reachable > 15
    ]
    if shifts:
        print("ASes that become priority targets only under the full view:")
        for shift in shifts[:5]:
            old = shift.rank_by_reachable or "absent"
            print(
                f"  AS{shift.asn}: reachable rank {old} → "
                f"responsive rank {shift.rank_by_responsive}"
            )
    # From target selection to execution: launch an ADDR-flooding cohort
    # out of the responsive view's top AS and watch the detector pin the
    # flood on that AS.
    top_asn = responsive.top(1)[0].asn
    attack = AttackPlan(
        attackers=(
            AttackerSpec(
                kind="addr_flooder",
                count=6,
                scope=AttackScope(asns=(top_asn,)),
                name="hijack-as-flood",
            ),
        )
    )
    print()
    print(
        f"Re-running the campaign with {attack.total_count} flooders "
        f"scoped to AS{top_asn} (the responsive view's top target)..."
    )
    attacked = LongitudinalScenario(
        LongitudinalConfig(
            scale=args.scale,
            snapshots=args.snapshots,
            seed=args.seed,
            attack=attack,
        )
    )
    attacked_result = CampaignRunner(attacked).run()
    detection = attacked_result.merged_detection(attacked.universe.asn_of)
    flooder_addrs = [flooder.addr for flooder in attacked.flooders]
    honest = [record.addr for record in attacked.population.reachable]
    metrics = score_detection(detection, flooder_addrs, honest)
    share = detection.as_share_by_asn().get(top_asn, 0.0)
    print(
        f"Detector: {len(metrics.detected)}/{len(flooder_addrs)} flooders "
        f"flagged (recall {metrics.recall:.2f}), "
        f"{len(metrics.false_positives)} false positives; "
        f"{share:.0%} of flagged peers sit in AS{top_asn} "
        f"(paper: 59% of flooders in AS3320)"
    )

    print()
    print(
        "Conclusion (paper §IV-A.1): attack plans built on the reachable "
        "view alone mis-rank targets; an accurate characterization of the "
        "unreachable network changes who the adversary should hijack — "
        "and AS-level attribution of an active flood singles the "
        "hijacked AS right back out."
    )


if __name__ == "__main__":
    main()
