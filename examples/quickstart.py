#!/usr/bin/env python3
"""Quickstart: spin up a small Bitcoin network and watch it synchronize.

Builds a 40-node reachable network with the measured 15/85 address-plane
pollution, mines blocks for two simulated hours, and reports the
synchronization statistics a Bitnodes-style monitor would see — the
smallest end-to-end tour of the library.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import summarize
from repro.core import SyncMonitor
from repro.core.reports import format_table, series_preview
from repro.netmodel import ProtocolConfig, ProtocolScenario
from repro.units import HOURS, format_duration


def main() -> None:
    print("Building a 40-node Bitcoin network (seed 7)...")
    scenario = ProtocolScenario(
        ProtocolConfig(
            n_reachable=40,
            seed=7,
            block_interval=600.0,  # one block per 10 minutes
            churn_per_10min=2.0,   # light churn
        )
    )
    print(f"  population: {scenario.population.summary()}")

    print("Warming up (30 simulated minutes)...")
    scenario.start(warmup=0.5 * HOURS)

    monitor = SyncMonitor(scenario, period=300.0, poll_spread=240.0)
    duration = 2 * HOURS
    print(f"Running for {format_duration(duration)} of simulated time...")
    scenario.sim.run_for(duration)

    values = monitor.sync_percents()
    stats = summarize(values)
    print()
    print(
        format_table(
            ("metric", "value"),
            [
                ("blocks mined", scenario.mining.blocks_mined),
                ("best height", scenario.best_height),
                ("running nodes", len(scenario.running_nodes())),
                ("sync samples", stats.count),
                ("mean sync %", round(stats.mean, 2)),
                ("median sync %", round(stats.median, 2)),
                ("events simulated", scenario.sim.scheduler.fired),
            ],
            title="Quickstart results",
        )
    )
    print(f"sync over time: {series_preview(values)}")

    sample_node = scenario.running_nodes()[0]
    print()
    print(f"one node's view: {sample_node!r}")
    print(
        f"  addrman: {len(sample_node.addrman)} addresses "
        f"({sample_node.addrman.tried_count} tried, "
        f"{sample_node.addrman.new_count} new)"
    )


if __name__ == "__main__":
    main()
