#!/usr/bin/env python3
"""Root-causing a synchronization drop: the paper's Fig. 1 story, live.

Runs the same network twice — once with 2019-level churn and once with
2020-level (doubled) churn among synchronized nodes — and shows how the
measured synchronization distribution shifts, exactly as the paper's
kernel densities do.  Also prints an ASCII rendering of the two KDEs.

Run:  python examples/eclipse_of_sync.py  [--duration-hours 2]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import SyncCampaignConfig, run_2019_vs_2020
from repro.core.reports import comparison_table
from repro.netmodel import calibration as cal
from repro.units import HOURS


def ascii_density(density, width: int = 64, height: int = 8) -> str:
    """A coarse vertical-bars rendering of a KDE curve."""
    values = np.interp(
        np.linspace(density.grid[0], density.grid[-1], width),
        density.grid,
        density.density,
    )
    peak = values.max() or 1.0
    blocks = " ▁▂▃▄▅▆▇█"
    return "".join(
        blocks[min(len(blocks) - 1, int(v / peak * (len(blocks) - 1)))]
        for v in values
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration-hours", type=float, default=2.0)
    parser.add_argument("--nodes", type=int, default=60)
    parser.add_argument("--seed", type=int, default=21)
    args = parser.parse_args()

    base = SyncCampaignConfig(
        n_reachable=args.nodes,
        duration=args.duration_hours * HOURS,
        seed=args.seed,
    )
    print(
        f"Running two campaigns ({args.nodes} nodes, "
        f"{args.duration_hours}h each): 2019-level vs 2020-level churn..."
    )
    results = run_2019_vs_2020(base)
    r2019, r2020 = results["2019"], results["2020"]

    print()
    print(
        comparison_table(
            [
                ("mean sync 2019 (%)", cal.SYNC_MEAN_2019, r2019.mean),
                ("median sync 2019 (%)", cal.SYNC_MEDIAN_2019, r2019.median),
                ("mean sync 2020 (%)", cal.SYNC_MEAN_2020, r2020.mean),
                ("median sync 2020 (%)", cal.SYNC_MEDIAN_2020, r2020.median),
                ("sync departures/10min 2019", cal.SYNC_DEPARTURES_2019,
                 r2019.sync_departures_per_10min),
                ("sync departures/10min 2020", cal.SYNC_DEPARTURES_2020,
                 r2020.sync_departures_per_10min),
            ],
            title="Fig. 1 reproduction",
        )
    )

    print()
    print("KDE of synchronization samples (x: 0..100% synchronized):")
    print(f"  2019: {ascii_density(r2019.density())}")
    print(f"  2020: {ascii_density(r2020.density())}")
    drop = r2019.mean - r2020.mean
    print()
    print(
        f"Doubling synchronized-node churn cost {drop:.1f} points of mean "
        f"synchronization (paper: "
        f"{cal.SYNC_MEAN_2019 - cal.SYNC_MEAN_2020:.1f} points)."
    )


if __name__ == "__main__":
    main()
