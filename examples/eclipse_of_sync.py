#!/usr/bin/env python3
"""Eclipsing a node out of synchronization, live.

Runs the same network twice with the same seed — once clean, once under
a :mod:`repro.adversary` plan that aims an eclipse cohort at one victim
while sync-stallers advertise blocks they never deliver.  The eclipse
campaigners monopolize the victim's inbound slots and feed it only
attacker addresses — a standing node shrugs this off because its honest
outbound connections survive.  The kill comes at *restart*: a reborn
node bootstraps from whatever its poisoned address book holds, dials
the stallers, and wedges at height 0 while its clean-run twin completes
initial block download.

Run:  python examples/eclipse_of_sync.py  [--duration-hours 0.5]
"""

from __future__ import annotations

import argparse

from repro.adversary import AttackPlan, AttackerSpec
from repro.core.reports import format_table
from repro.netmodel import ProtocolConfig, ProtocolScenario
from repro.units import HOURS


def build_scenario(args, attack):
    return ProtocolScenario(
        ProtocolConfig(
            n_reachable=args.nodes,
            seed=args.seed,
            mining=True,
            block_interval=120.0,
            pre_mined_blocks=30,
            attack=attack,
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration-hours", type=float, default=0.5)
    parser.add_argument("--nodes", type=int, default=25)
    parser.add_argument("--seed", type=int, default=21)
    args = parser.parse_args()
    duration = args.duration_hours * HOURS

    # The victim is deterministic for a given seed: the scenario's first
    # standing node (also the eclipse plan's default target).
    plan = AttackPlan(
        attackers=(
            AttackerSpec(kind="eclipse", count=4, connections=7),
            AttackerSpec(
                kind="sync_staller", count=2, tier="reachable",
                height_lead=500, announce_interval=30.0,
            ),
        )
    )
    print(
        f"Running {args.nodes} nodes twice ({args.duration_hours}h each): "
        f"clean, then under {plan.total_count} attackers "
        f"(4 eclipse + 2 sync-staller)..."
    )

    heights = {}
    for label, attack in (("clean", None), ("eclipsed", plan)):
        scenario = build_scenario(args, attack)
        victim = scenario.nodes[0]
        scenario.start(warmup=600.0)
        scenario.sim.run_for(duration)

        if attack is not None:
            force = scenario.attack_force
            assert force is not None
            attacker_addrs = set(force.attacker_addrs())
            inbound = [p for p in victim.peers.values() if p.is_inbound]
            grip = [p for p in inbound if p.remote_addr in attacker_addrs]
            stats = force.stats()
            print()
            print(
                format_table(
                    ("metric", "value"),
                    [
                        ("victim inbound slots held by attackers",
                         f"{len(grip)}/{len(inbound)}"),
                        ("cohort addresses pushed at victim",
                         stats.get("eclipse_addrs_sent", 0)),
                        ("phantom-block GETDATAs left hanging",
                         stats.get("stalled_getdata", 0)),
                    ],
                    title="Eclipse grip on the standing victim",
                )
            )

        # The restart: a reborn node with an empty address book
        # bootstraps from whatever it was last told about.  Clean run —
        # honest seeds; eclipsed run — the attacker addresses the cohort
        # spent the campaign pushing.
        from repro.bitcoin import BitcoinNode

        reborn = BitcoinNode(
            scenario.sim,
            scenario.universe.allocate_address(3320),
            scenario._clone_node_config(),
        )
        if attack is None:
            contacts = [node.addr for node in scenario.nodes[1:9]]
        else:
            contacts = force.attacker_addrs()
        reborn.bootstrap(contacts)
        reborn.start()
        scenario.sim.run_for(900.0)
        heights[label] = (reborn.chain.height, scenario.best_height)

    print()
    rows = []
    for label in ("clean", "eclipsed"):
        reborn_height, best = heights[label]
        rows.append((label, reborn_height, best, best - reborn_height))
    print(
        format_table(
            ("run", "reborn height", "network best", "blocks behind"),
            rows,
            title="Restarted victim after 15 minutes, same seed",
        )
    )
    clean_lag = heights["clean"][1] - heights["clean"][0]
    eclipsed_lag = heights["eclipsed"][1] - heights["eclipsed"][0]
    print()
    print(
        f"The eclipse cost the restarted victim "
        f"{eclipsed_lag - clean_lag} blocks of synchronization it reaches "
        f"when bootstrapping from honest peers."
    )


if __name__ == "__main__":
    main()
