#!/usr/bin/env python3
"""A miniature version of the paper's 60-day measurement campaign.

Reproduces the Fig. 2 workflow end to end: merge Bitnodes and DNS-seeder
views, drop the critical-infrastructure blacklist, crawl every reachable
node with iterative GETADDR (Algorithm 1), filter the harvest to the
unreachable set, probe it with crafted VER packets (Algorithm 2), detect
ADDR flooders, and derive the churn matrix (Algorithm 4) — then print
every headline statistic next to the paper's.

Run:  python examples/crawl_campaign.py  [--scale 0.01] [--snapshots 12]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import CampaignRunner
from repro.core.reports import comparison_table
from repro.netmodel import LongitudinalConfig, LongitudinalScenario
from repro.netmodel import calibration as cal
from repro.units import DAYS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.01,
                        help="population scale vs the real network")
    parser.add_argument("--snapshots", type=int, default=12,
                        help="crawl snapshots over the 60-day campaign")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()
    s = args.scale

    print(f"Building the campaign world (scale {s})...")
    scenario = LongitudinalScenario(
        LongitudinalConfig(scale=s, snapshots=args.snapshots, seed=args.seed)
    )
    print(f"  population: {scenario.population.summary()}")
    print(f"  flooders planted: {len(scenario.flooders)}")

    runner = CampaignRunner(scenario)
    for index, when in enumerate(scenario.snapshot_times):
        snap = runner.run_snapshot(index, when)
        print(
            f"  snapshot {index + 1:>2}/{args.snapshots} (day {when / DAYS:4.1f}): "
            f"connected {len(snap.connected):>4}, "
            f"unreachable {len(snap.unreachable):>6} "
            f"({snap.new_unreachable} new), "
            f"responsive {len(snap.responsive):>5}"
        )
    result = runner.result

    fig4 = result.fig4_series()
    fig5 = result.fig5_series()
    stats = result.churn_stats()
    interval = result.churn_matrix().snapshot_interval
    detection = result.merged_detection(scenario.universe.asn_of)
    reports = result.hosting_reports(scenario.universe.asn_of)

    print()
    print(
        comparison_table(
            [
                ("unreachable / snapshot", cal.UNREACHABLE_PER_SNAPSHOT * s,
                 float(np.mean(fig4["per_snapshot"]))),
                ("cumulative unreachable", cal.CUMULATIVE_UNREACHABLE * s,
                 fig4["cumulative"][-1]),
                ("responsive / snapshot", cal.RESPONSIVE_PER_SNAPSHOT * s,
                 float(np.mean(fig5["per_snapshot"]))),
                ("cumulative responsive", cal.CUMULATIVE_RESPONSIVE * s,
                 fig5["cumulative"][-1]),
                ("ADDR reachable share", cal.ADDR_REACHABLE_SHARE,
                 result.mean_addr_reachable_share()),
                ("flooders detected", round(cal.MALICIOUS_NODE_COUNT * s) or 1,
                 detection.count),
                ("always-on nodes", cal.ALWAYS_ON_NODES * s, stats.always_on),
                ("daily departures", cal.DAILY_CHURN_NODES * s,
                 stats.mean_daily_departures(interval)),
                ("mean lifetime (days)", cal.MEAN_NODE_LIFETIME_DAYS,
                 stats.mean_lifetime / DAYS),
                ("k50 reachable ASes", cal.AS_50PCT_REACHABLE,
                 reports["reachable"].k_to_cover_half()),
                ("k50 responsive ASes", cal.AS_50PCT_RESPONSIVE,
                 reports["responsive"].k_to_cover_half()),
            ],
            title="Campaign summary (paper values scaled where counts)",
        )
    )


if __name__ == "__main__":
    main()
