#!/usr/bin/env python3
"""The ADDR-flooding attack and its detection (§IV-B, Fig. 8), live.

Loads the shipped :mod:`repro.adversary` attack plan
(``attackplan_flood.json``: three flooders placed in AS3320, the paper's
most flooder-heavy AS) and compiles it onto a live protocol network.
Shows (1) the honest nodes' addrmans filling with garbage, (2) a fresh
victim's outgoing-connection success rate collapsing, and (3) the
paper's detection heuristic — "an honest ADDR response always contains
at least one reachable address" — scored against the plan's ground
truth: full recall, zero false positives.

Run:  python examples/addr_flooding.py
"""

from __future__ import annotations

from pathlib import Path

from repro.adversary import AttackPlan
from repro.bitcoin import NodeConfig
from repro.core import (
    GetAddrConfig,
    GetAddrCrawler,
    detect_flooders,
    score_detection,
)
from repro.core.pipeline import CRAWLER_ADDR
from repro.core.reports import format_table
from repro.netmodel import ProtocolConfig, ProtocolScenario
from repro.netmodel.population import NodeClass

PLAN_FILE = Path(__file__).resolve().parent / "attackplan_flood.json"


def main() -> None:
    plan = AttackPlan.from_file(PLAN_FILE)
    print(
        f"Building a 25-node network under {PLAN_FILE.name} "
        f"({plan.total_count} flooder(s) in AS3320)..."
    )
    scenario = ProtocolScenario(
        ProtocolConfig(
            n_reachable=25,
            seed=77,
            mining=False,
            node_config=NodeConfig(serve_repeated_getaddr=True),
            attack=plan,
        )
    )
    force = scenario.attack_force
    assert force is not None
    scenario.start(warmup=600.0)
    scenario.sim.run_for(900.0)

    stats = force.stats()
    print(f"  flooders pushed {stats['addrs_flooded']} fabricated records")

    # (1) How polluted did the network's address plane get?
    def fake_share(node) -> float:
        addrs = node.addrman.all_addresses()
        if not addrs:
            return 0.0
        fakes = sum(
            1
            for addr in addrs
            if scenario.population.classify(addr) is NodeClass.FAKE
        )
        return fakes / len(addrs)

    attacker_addrs = set(force.attacker_addrs())
    neighbours = [
        node
        for node in scenario.running_nodes()
        if any(p.remote_addr in attacker_addrs for p in node.peers.values())
    ]
    print()
    print(
        format_table(
            ("node", "addrman size", "fake share"),
            [
                (str(node.addr), len(node.addrman), round(fake_share(node), 3))
                for node in neighbours[:6]
            ],
            title="Addrman pollution at the flooders' neighbours",
        )
    )

    # (2) A fresh victim bootstrapping off a flooder.
    victim = scenario.make_observer_node(
        NodeConfig(track_connection_attempts=True)
    )
    victim.bootstrap([force.attackers[0].addr])
    victim.start()
    scenario.sim.run_for(600.0)
    rate = victim.connection_success_rate()
    print()
    print(
        f"Fresh victim after 10 minutes: {victim.outbound_count} outbound "
        f"connections, success rate {rate:.1%} "
        f"(paper's network-wide measurement: 11.2%)"
    )

    # (3) Run the detector over a crawl of every listener, then score it
    # against the plan's ground truth.
    honest = [node.addr for node in scenario.running_nodes()]
    targets = honest + sorted(attacker_addrs)
    crawler = GetAddrCrawler(
        scenario.sim, CRAWLER_ADDR, GetAddrConfig(max_rounds=20)
    )
    crawl = crawler.run_to_completion(targets)
    report = detect_flooders(
        crawl,
        reachable_known=set(honest),
        min_addresses=500,
        asn_of=scenario.universe.asn_of,
    )
    print()
    print(
        format_table(
            ("detected peer", "records sent", "unique", "ASN"),
            [
                (str(f.peer), f.unreachable_sent, f.unique_sent, f.asn)
                for f in report.findings
            ],
            title="Detection report (heuristic: no reachable addr in any ADDR)",
        )
    )
    metrics = score_detection(
        report, attackers=force.attacker_addrs(), honest=honest
    )
    print()
    print(
        f"Flooders caught: {len(metrics.detected)}/{plan.total_count} "
        f"(recall {metrics.recall:.2f}); "
        f"false positives: {len(metrics.false_positives)} "
        f"over {metrics.honest_scored} honest peers"
    )


if __name__ == "__main__":
    main()
