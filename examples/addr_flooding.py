#!/usr/bin/env python3
"""The ADDR-flooding attack and its detection (§IV-B, Fig. 8), live.

Plants a protocol-mode malicious node that answers every GETADDR with
fabricated unreachable addresses and pushes unsolicited ADDR floods.
Shows (1) the victim's addrman filling with garbage, (2) the victim's
outgoing-connection success rate collapsing, and (3) the paper's
detection heuristic — "an honest ADDR response always contains at least
one reachable address" — catching the flooder with zero false positives.

Run:  python examples/addr_flooding.py
"""

from __future__ import annotations

from repro.bitcoin import NodeConfig
from repro.core import GetAddrConfig, GetAddrCrawler, detect_flooders
from repro.core.pipeline import CRAWLER_ADDR
from repro.core.reports import format_table
from repro.netmodel import ProtocolConfig, ProtocolScenario
from repro.netmodel.malicious import MaliciousBitcoinNode
from repro.netmodel.population import NodeClass


def main() -> None:
    print("Building a 25-node network with one ADDR flooder in AS3320...")
    scenario = ProtocolScenario(
        ProtocolConfig(
            n_reachable=25,
            seed=77,
            mining=False,
            node_config=NodeConfig(serve_repeated_getaddr=True),
        )
    )
    flooder = MaliciousBitcoinNode(
        scenario.sim,
        scenario.universe.allocate_address(3320),
        population=scenario.population,
        flood_volume=4000,
        flood_interval=15.0,
    )
    scenario.nodes.append(flooder)
    scenario.start(warmup=600.0)
    # The flooder joins like any node: connects out, then starts pushing.
    flooder.bootstrap(
        [record.addr for record in scenario.population.reachable[:25]]
    )
    flooder.start()
    scenario.sim.run_for(900.0)

    print(f"  flooder pushed {flooder.addrs_flooded} unsolicited records")

    # (1) How polluted did the network's address plane get?
    def fake_share(node) -> float:
        addrs = node.addrman.all_addresses()
        if not addrs:
            return 0.0
        fakes = sum(
            1
            for addr in addrs
            if scenario.population.classify(addr) is NodeClass.FAKE
        )
        return fakes / len(addrs)

    neighbours = [
        node
        for node in scenario.running_nodes()
        if any(p.remote_addr == flooder.addr for p in node.peers.values())
    ]
    print()
    print(
        format_table(
            ("node", "addrman size", "fake share"),
            [
                (str(node.addr), len(node.addrman), round(fake_share(node), 3))
                for node in neighbours[:6]
            ],
            title="Addrman pollution at the flooder's neighbours",
        )
    )

    # (2) A fresh victim bootstrapping near the flooder.
    victim = scenario.make_observer_node(
        NodeConfig(track_connection_attempts=True)
    )
    victim.bootstrap([flooder.addr])
    victim.start()
    scenario.sim.run_for(600.0)
    rate = victim.connection_success_rate()
    print()
    print(
        f"Fresh victim after 10 minutes: {victim.outbound_count} outbound "
        f"connections, success rate {rate:.1%} "
        f"(paper's network-wide measurement: 11.2%)"
    )

    # (3) Run the detector over a crawl of every listener.
    targets = [node.addr for node in scenario.running_nodes()]
    crawler = GetAddrCrawler(
        scenario.sim, CRAWLER_ADDR, GetAddrConfig(max_rounds=20)
    )
    crawl = crawler.run_to_completion(targets)
    report = detect_flooders(
        crawl,
        reachable_known=set(targets) - {flooder.addr},
        min_addresses=500,
        asn_of=scenario.universe.asn_of,
    )
    print()
    print(
        format_table(
            ("detected peer", "records sent", "unique", "ASN"),
            [
                (str(f.peer), f.unreachable_sent, f.unique_sent, f.asn)
                for f in report.findings
            ],
            title="Detection report (heuristic: no reachable addr in any ADDR)",
        )
    )
    caught = any(f.peer == flooder.addr for f in report.findings)
    false_positives = [f for f in report.findings if f.peer != flooder.addr]
    print()
    print(f"Flooder caught: {caught}; false positives: {len(false_positives)}")


if __name__ == "__main__":
    main()
