"""Tests for the top-level Simulator and periodic tasks."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simnet import Simulator


class TestSimulatorTime:
    def test_run_until_advances_clock_exactly(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run_until(5.0)
        assert sim.now == 5.0

    def test_run_until_dispatches_due_events_only(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(9.0, fired.append, "late")
        sim.run_until(5.0)
        assert fired == ["early"]

    def test_run_until_backwards_rejected(self, sim):
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(9.0)

    def test_run_for(self, sim):
        sim.run_for(3.0)
        sim.run_for(4.0)
        assert sim.now == 7.0

    def test_run_drains_heap(self, sim):
        fired = []
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, fired.append, delay)
        count = sim.run()
        assert count == 3
        assert fired == [1.0, 2.0, 3.0]

    def test_run_detects_runaway(self, sim):
        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        assert sim.step() is True
        assert sim.step() is False
        assert fired == [1]


class TestDeterminism:
    def test_same_seed_same_streams(self):
        a = Simulator(seed=7).random.stream("x")
        b = Simulator(seed=7).random.stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_different_streams(self):
        sim = Simulator(seed=7)
        a = sim.random.stream("x")
        b = sim.random.stream("y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_is_cached(self):
        sim = Simulator(seed=7)
        assert sim.random.stream("x") is sim.random.stream("x")


class TestPeriodicTask:
    def test_fires_on_interval(self, sim):
        ticks = []
        sim.call_every(10.0, lambda: ticks.append(sim.now))
        sim.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_start_delay(self, sim):
        ticks = []
        sim.call_every(10.0, lambda: ticks.append(sim.now), start_delay=1.0)
        sim.run_until(25.0)
        assert ticks == [1.0, 11.0, 21.0]

    def test_stop(self, sim):
        ticks = []
        task = sim.call_every(10.0, lambda: ticks.append(sim.now))
        sim.run_until(15.0)
        task.stop()
        sim.run_until(100.0)
        assert ticks == [10.0]

    def test_stop_from_inside_callback(self, sim):
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()

        task = sim.call_every(5.0, tick)
        sim.run_until(100.0)
        assert ticks == [5.0, 10.0]

    def test_zero_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_every(0.0, lambda: None)


class TestComponentRegistry:
    def test_register_and_lookup(self, sim):
        sim.register("thing", 42)
        assert sim.components["thing"] == 42

    def test_duplicate_rejected(self, sim):
        sim.register("thing", 1)
        with pytest.raises(SimulationError):
            sim.register("thing", 2)
