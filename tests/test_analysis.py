"""Tests for the statistics helpers: summaries, KDE, time series."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    Series,
    cdf,
    ccdf,
    compare_densities,
    fraction_below,
    k_to_cover,
    kde,
    ratio_table,
    set_deltas,
    summarize,
    top_k_share,
)
from repro.errors import AnalysisError


class TestSummarize:
    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            summarize([])

    def test_as_dict_keys(self):
        keys = set(summarize([1.0]).as_dict())
        assert keys == {"count", "mean", "median", "min", "max", "p90", "p99", "std"}

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60))
    def test_ordering_invariants(self, values):
        summary = summarize(values)
        # Tolerate one ULP of float summation error in the mean.
        slack = 1e-9 * max(1.0, abs(summary.maximum))
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
        assert summary.p90 <= summary.p99 <= summary.maximum


class TestCdf:
    def test_monotone(self):
        xs, ps = cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_ccdf_complements(self):
        values = [1.0, 2.0, 3.0, 4.0]
        _xs, ps = cdf(values)
        _xs2, qs = ccdf(values)
        assert list(ps + qs) == pytest.approx([1.25] * 4)  # offset by 1/n

    def test_empty(self):
        with pytest.raises(AnalysisError):
            cdf([])


class TestFractionBelow:
    def test_basic(self):
        assert fraction_below([1, 2, 3, 4], 3) == 0.5

    def test_strict_inequality(self):
        assert fraction_below([3, 3, 3], 3) == 0.0


class TestKToCover:
    def test_basic(self):
        counts = {"a": 50, "b": 30, "c": 20}
        assert k_to_cover(counts, 0.5) == 1
        assert k_to_cover(counts, 0.8) == 2
        assert k_to_cover(counts, 1.0) == 3

    def test_empty(self):
        with pytest.raises(AnalysisError):
            k_to_cover({}, 0.5)

    def test_invalid_share(self):
        with pytest.raises(AnalysisError):
            k_to_cover({"a": 1}, 1.5)

    def test_top_k_share(self):
        counts = {"a": 50, "b": 30, "c": 20}
        assert top_k_share(counts, 1) == 0.5
        assert top_k_share(counts, 3) == 1.0


class TestRatioTable:
    def test_ratio(self):
        rows = ratio_table([("x", 10.0, 12.0)])
        assert rows[0][3] == pytest.approx(1.2)

    def test_zero_paper_value(self):
        rows = ratio_table([("x", 0.0, 12.0)])
        assert np.isnan(rows[0][3])


class TestKde:
    def test_density_integrates_to_one(self):
        rng = np.random.default_rng(1)
        estimate = kde(rng.normal(50, 10, 300).clip(0, 100))
        area = np.trapezoid(estimate.density, estimate.grid)
        assert area == pytest.approx(1.0, abs=0.08)

    def test_mean_median_reported(self):
        estimate = kde([10.0, 20.0, 30.0])
        assert estimate.mean == 20.0
        assert estimate.median == 20.0
        assert estimate.count == 3

    def test_mode_near_data_peak(self):
        rng = np.random.default_rng(2)
        estimate = kde(rng.normal(70, 3, 400).clip(0, 100))
        assert 60 < estimate.mode < 80

    def test_degenerate_input_does_not_crash(self):
        estimate = kde([42.0, 42.0, 42.0])
        assert estimate.mode == pytest.approx(42.0, abs=1.0)

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            kde([])

    def test_compare_densities_shared_grid(self):
        before, after = compare_densities([10.0, 20.0, 30.0], [40.0, 50.0, 61.0])
        assert list(before.grid) == list(after.grid)


class TestSeries:
    def test_append_and_stats(self):
        series = Series()
        series.append(0.0, 10.0)
        series.append(1.0, 20.0)
        assert len(series) == 2
        assert series.mean() == 15.0
        assert series.diffs() == [10.0]

    def test_time_ordering_enforced(self):
        series = Series()
        series.append(5.0, 1.0)
        with pytest.raises(AnalysisError):
            series.append(4.0, 2.0)

    def test_fraction_where(self):
        series = Series()
        for index, value in enumerate([1, 5, 10, 2]):
            series.append(float(index), value)
        assert series.fraction_where(lambda v: v < 5) == 0.5

    def test_empty_mean_raises(self):
        with pytest.raises(AnalysisError):
            Series().mean()


class TestSetDeltas:
    def test_basic(self):
        snapshots = [{1, 2}, {2, 3}, {3}]
        arrivals, departures = set_deltas(snapshots)
        assert arrivals == [1, 0]
        assert departures == [1, 1]

    def test_too_few(self):
        with pytest.raises(AnalysisError):
            set_deltas([{1}])
