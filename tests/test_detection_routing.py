"""Tests for ADDR composition, the malicious-peer detector, and routing."""

from __future__ import annotations

import pytest

from repro.core.addr_analysis import (
    classify_harvest,
    composition,
    table_composition,
)
from repro.core.getaddr import CrawlResult, PeerHarvest
from repro.core.malicious_detect import detect_flooders, merge_reports
from repro.core.routing import (
    common_top_ases,
    hosting_report,
    plan_hijack,
    target_shifts,
)
from repro.errors import AnalysisError

from .conftest import make_addr


def harvest(target_index, addr_indices, connected=True, own=False):
    target = make_addr(target_index)
    addrs = {make_addr(i) for i in addr_indices}
    if own:
        addrs.add(target)
    record = PeerHarvest(
        target=target,
        connected=connected,
        rounds=1,
        addr_messages=1,
        total_records=len(addrs),
        addresses=addrs,
        sent_own_addr=own,
    )
    return record


def crawl_result(*harvests):
    result = CrawlResult()
    for record in harvests:
        result.harvests[record.target] = record
    return result


class TestComposition:
    def test_shares(self):
        reachable_known = {make_addr(i) for i in range(5)}
        result = crawl_result(
            harvest(100, range(10)),  # 5 reachable + 5 unreachable
        )
        comp = composition(result, reachable_known)
        assert comp.total_unique == 10
        assert comp.reachable_share == pytest.approx(0.5)
        assert comp.unreachable_share == pytest.approx(0.5)
        assert comp.mean_reachable_share == pytest.approx(0.5)

    def test_empty_result(self):
        comp = composition(crawl_result(), set())
        assert comp.total_unique == 0
        assert comp.unreachable_share == 0.0

    def test_classify_harvest(self):
        record = harvest(100, range(4))
        counts = classify_harvest(record, {make_addr(0)})
        assert counts == {"reachable": 1, "unreachable": 3}

    def test_table_composition(self):
        table = [make_addr(i) for i in range(10)]
        counts = table_composition(table, lambda addr: addr == make_addr(0))
        assert counts == {"reachable": 1, "unreachable": 9, "total": 10}


class TestDetectFlooders:
    def test_flooder_detected(self):
        reachable_known = {make_addr(i) for i in range(10)}
        flooder = harvest(100, range(2000, 3200))  # all unreachable, >1000
        honest = harvest(101, range(5), own=True)
        report = detect_flooders(
            crawl_result(flooder, honest), reachable_known | {make_addr(101)}
        )
        assert report.count == 1
        assert report.findings[0].peer == make_addr(100)
        assert report.findings[0].unreachable_sent == 1200

    def test_honest_node_with_reachable_addr_not_flagged(self):
        reachable_known = {make_addr(0)}
        peer = harvest(100, list(range(2000, 3200)) + [0])
        report = detect_flooders(crawl_result(peer), reachable_known)
        assert report.count == 0

    def test_below_threshold_not_flagged(self):
        report = detect_flooders(
            crawl_result(harvest(100, range(2000, 2100))), set(), min_addresses=1000
        )
        assert report.count == 0

    def test_threshold_configurable(self):
        report = detect_flooders(
            crawl_result(harvest(100, range(2000, 2100))), set(), min_addresses=50
        )
        assert report.count == 1

    def test_unconnected_targets_skipped(self):
        record = harvest(100, range(2000, 3200), connected=False)
        report = detect_flooders(crawl_result(record), set())
        assert report.count == 0

    def test_count_over_and_max(self):
        reachable_known = set()
        big = harvest(100, range(10_000, 15_000))
        small = harvest(101, range(20_000, 21_100))
        report = detect_flooders(crawl_result(big, small), reachable_known)
        assert report.count == 2
        assert report.count_over(2000) == 1
        assert report.max_flood == 5000
        assert report.flood_volumes() == [5000, 1100]

    def test_asn_attribution(self):
        report = detect_flooders(
            crawl_result(harvest(100, range(2000, 3200))),
            set(),
            asn_of=lambda addr: 3320,
        )
        assert report.findings[0].asn == 3320
        assert report.as_share_by_asn() == {3320: 1.0}

    def test_merge_accumulates_records_keeps_max_unique(self):
        first = detect_flooders(
            crawl_result(harvest(100, range(2000, 3200))), set()
        )
        second = detect_flooders(
            crawl_result(harvest(100, range(2000, 3500))), set()
        )
        merged = merge_reports([first, second])
        assert merged.count == 1
        # Records sum across snapshots (1200 + 1500) ...
        assert merged.findings[0].unreachable_sent == 2700
        # ... while the unique count takes the larger session.
        assert merged.findings[0].unique_sent == 1500


class TestRouting:
    def _report(self):
        addrs = []
        asn_map = {}
        index = 0
        for asn, count in [(10, 50), (20, 30), (30, 15), (40, 5)]:
            for _ in range(count):
                addr = make_addr(index)
                asn_map[addr] = asn
                addrs.append(addr)
                index += 1
        return hosting_report("test", addrs, asn_map.get), asn_map

    def test_top_ranks(self):
        report, _ = self._report()
        top = report.top(2)
        assert [(row.asn, row.count) for row in top] == [(10, 50), (20, 30)]
        assert top[0].percent == pytest.approx(50.0)

    def test_k_to_cover_half(self):
        report, _ = self._report()
        assert report.k_to_cover_half() == 1  # AS10 alone hosts 50%

    def test_rank_of(self):
        report, _ = self._report()
        assert report.rank_of(30) == 3
        assert report.rank_of(999) is None

    def test_unmapped_addresses_skipped(self):
        report = hosting_report(
            "test", [make_addr(1), make_addr(2)], lambda a: 5 if a == make_addr(1) else None
        )
        assert report.total_nodes == 1

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            hosting_report("test", [], lambda a: None)

    def test_plan_hijack(self):
        report, _ = self._report()
        plan = plan_hijack(report, target_share=0.5)
        assert plan.hijacked_ases == (10,)
        assert plan.isolated_share >= 0.5

    def test_plan_hijack_greedy_order(self):
        report, _ = self._report()
        plan = plan_hijack(report, target_share=0.9)
        assert plan.hijacked_ases == (10, 20, 30)

    def test_common_top_ases(self):
        report_a, _ = self._report()
        addrs = [make_addr(i + 500) for i in range(10)]
        report_b = hosting_report("other", addrs, lambda a: 10)
        common = common_top_ases([report_a, report_b], k=3)
        assert common == {10}

    def test_target_shifts_finds_rank_moves(self):
        # AS 99 is big for responsive but absent for reachable.
        reachable, _ = self._report()
        responsive = hosting_report(
            "responsive",
            [make_addr(i + 700) for i in range(20)],
            lambda a: 99,
        )
        shifts = target_shifts(reachable, responsive, k=1)
        assert shifts[0].asn == 99
        assert shifts[0].rank_by_responsive == 1
        assert shifts[0].rank_by_reachable is None
