"""Smoke tests: every CLI subcommand runs end-to-end at tiny scale.

These guard the argument wiring, not the science — each command gets the
smallest world that exercises its full code path, runs through
``main(argv)`` exactly as a shell invocation would, and must exit 0 with
its headline table on stdout.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def tiny_store(tmp_path):
    """A store holding one completed two-snapshot campaign."""
    root = tmp_path / "store"
    code = main(
        [
            "campaign", "--scale", "0.002", "--snapshots", "2",
            "--seed", "7", "--store", str(root),
        ]
    )
    assert code == 0
    from repro.store import RunStore

    store = RunStore(root)
    (manifest,) = store.manifests()
    return root, manifest.run_id


class TestParserWiring:
    def test_store_group_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])

    def test_store_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["store", "ls"],
            ["store", "show", "campaign-abc"],
            ["store", "gc", "--dry-run"],
            ["store", "diff", "campaign-a", "campaign-b"],
        ):
            args = parser.parse_args(argv)
            assert args.command == "store"
            assert callable(args.func)

    def test_campaign_store_flags_parse(self):
        args = build_parser().parse_args(
            ["campaign", "--store", "st", "--resume", "campaign-abc",
             "--engine", "heap"]
        )
        assert args.store == "st"
        assert args.resume == "campaign-abc"
        assert args.engine == "heap"


class TestCampaignSmoke:
    def test_campaign_runs(self, capsys):
        code = main(["campaign", "--scale", "0.002", "--snapshots", "2"])
        assert code == 0
        assert "Campaign" in capsys.readouterr().out

    def test_campaign_sweep_runs(self, capsys):
        code = main(
            ["campaign", "--scale", "0.002", "--snapshots", "2",
             "--seeds", "2", "--workers", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign sweep" in out
        assert "mean over 2 seeds" in out

    def test_campaign_store_cache_hit(self, tiny_store, capsys):
        root, run_id = tiny_store
        code = main(
            ["campaign", "--scale", "0.002", "--snapshots", "2",
             "--seed", "7", "--store", str(root)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[cached]" in out
        assert run_id in out

    def test_campaign_resume_wrong_config_fails_loudly(self, tiny_store):
        from repro.errors import StoreError

        root, run_id = tiny_store
        with pytest.raises(StoreError):
            main(
                ["campaign", "--scale", "0.002", "--snapshots", "2",
                 "--seed", "8", "--store", str(root), "--resume", run_id]
            )


class TestStoreSmoke:
    def test_ls(self, tiny_store, capsys):
        root, run_id = tiny_store
        assert main(["store", "ls", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert run_id in out
        assert "complete" in out

    def test_ls_empty(self, tmp_path, capsys):
        assert main(["store", "ls", "--store", str(tmp_path / "none")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_show(self, tiny_store, capsys):
        root, run_id = tiny_store
        assert main(["store", "show", run_id, "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "result_digest" in out
        assert "snapshot" in out

    def test_gc(self, tiny_store, capsys):
        root, _ = tiny_store
        assert main(["store", "gc", "--dry-run", "--store", str(root)]) == 0
        assert "would remove" in capsys.readouterr().out
        assert main(["store", "gc", "--store", str(root)]) == 0
        assert "removed" in capsys.readouterr().out
        # after gc the stored result must still load (cache hit path)
        code = main(
            ["campaign", "--scale", "0.002", "--snapshots", "2",
             "--seed", "7", "--store", str(root)]
        )
        assert code == 0

    def test_diff_self(self, tiny_store, capsys):
        root, run_id = tiny_store
        assert main(
            ["store", "diff", run_id, run_id, "--store", str(root)]
        ) == 0
        out = capsys.readouterr().out
        assert "identical run parameters" in out
        assert "final results identical" in out


@pytest.mark.slow
class TestProtocolCommandsSmoke:
    def test_sync_runs(self, capsys):
        code = main(["sync", "--nodes", "12", "--hours", "0.4", "--seed", "3"])
        assert code == 0
        assert "Fig. 1" in capsys.readouterr().out

    def test_relay_runs(self, capsys):
        code = main(["relay", "--nodes", "10", "--hours", "0.5"])
        assert code == 0
        assert "block relay mean" in capsys.readouterr().out

    def test_conn_runs(self, capsys):
        code = main(["conn", "--nodes", "15", "--runs", "1"])
        assert code == 0
        assert "connection success rate" in capsys.readouterr().out


class TestVariantsWiring:
    def test_variants_flags_parse(self):
        args = build_parser().parse_args(
            ["variants", "--variants", "baseline,improved",
             "--churn", "2,6", "--fidelities", "hybrid",
             "--store", "st", "--resume", "variant-matrix-abc", "--force"]
        )
        assert args.command == "variants"
        assert args.variants == "baseline,improved"
        assert args.resume == "variant-matrix-abc"
        assert args.force is True
        assert callable(args.func)

    def test_attack_mitigations_takes_optional_variant(self):
        parser = build_parser()
        base = ["attack", "--plan", "plan.json"]
        assert parser.parse_args(base).mitigations is None
        assert parser.parse_args(base + ["--mitigations"]).mitigations == (
            "improved"
        )
        assert parser.parse_args(
            base + ["--mitigations", "churn-resilient"]
        ).mitigations == "churn-resilient"

    def test_variants_resume_requires_store(self, capsys):
        code = main(
            ["variants", "--variants", "baseline",
             "--resume", "variant-matrix-abc"]
        )
        assert code == 2


@pytest.mark.slow
class TestVariantsSmoke:
    def test_variants_runs_and_caches(self, tmp_path, capsys):
        root = tmp_path / "store"
        argv = [
            "variants", "--variants", "baseline,unreachable-relay",
            "--churn", "2,6", "--fidelities", "hybrid",
            "--nodes", "10", "--hours", "0.3", "--seeds", "1",
            "--workers", "1", "--store", str(root),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "retention" in out
        assert "unreachable-relay" in out
        assert "stored as run variant-matrix-" in out
        assert main(argv) == 0
        assert "cache hit" in capsys.readouterr().out
