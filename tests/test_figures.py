"""Tests for the terminal figure renderings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.kde import kde
from repro.core.figures import (
    density_curve,
    density_overlay,
    dual_series,
    flood_bars,
    histogram,
    presence_matrix,
)
from repro.errors import AnalysisError


@pytest.fixture
def density():
    rng = np.random.default_rng(4)
    return kde(rng.normal(60, 10, 200).clip(0, 100))


class TestDensityCurve:
    def test_width(self, density):
        line = density_curve(density, width=40)
        assert len(line) == 40

    def test_label_prefix(self, density):
        line = density_curve(density, width=40, label="2019")
        assert line.startswith("  2019 ")

    def test_peak_is_solid_block(self, density):
        line = density_curve(density, width=80)
        assert "█" in line


class TestDensityOverlay:
    def test_shared_scale(self, density):
        rng = np.random.default_rng(5)
        flat = kde(rng.uniform(0, 100, 300))
        text = density_overlay({"tall": density, "flat": flat})
        lines = text.splitlines()
        assert len(lines) == 3  # two curves + axis
        tall_line, flat_line = lines[0], lines[1]
        # The flatter curve never reaches the shared peak block.
        assert "█" in tall_line
        assert "█" not in flat_line

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            density_overlay({})


class TestDualSeries:
    def test_two_lines_with_labels(self):
        text = dual_series([1, 2, 3], [3, 6, 9], labels=("per", "cum"))
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].strip().startswith("per")
        assert lines[1].strip().startswith("cum")

    def test_shared_peak(self):
        text = dual_series([1, 1, 1], [10, 10, 10])
        low, high = text.splitlines()
        assert "█" in high
        assert "█" not in low

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            dual_series([], [1])


class TestHistogram:
    def test_bin_count(self):
        text = histogram([1.0, 2.0, 2.5, 9.0], bins=4)
        assert len(text.splitlines()) == 4

    def test_counts_shown(self):
        text = histogram([1.0] * 7 + [5.0], bins=2)
        assert " 7" in text
        assert " 1" in text

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            histogram([])


class TestPresenceMatrix:
    def test_downsampling_bounds(self):
        matrix = np.random.default_rng(1).random((200, 300)) > 0.5
        text = presence_matrix(matrix, max_rows=20, max_cols=40)
        lines = text.splitlines()
        assert len(lines) <= 21
        assert all(len(line) <= 41 for line in lines)

    def test_full_presence_is_solid(self):
        matrix = np.ones((4, 8), dtype=bool)
        text = presence_matrix(matrix)
        assert set(text.replace("\n", "")) == {"█"}

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            presence_matrix(np.zeros((0, 0), dtype=bool))


class TestFloodBars:
    def test_sorted_desc_with_counts(self):
        text = flood_bars([100, 5000, 300])
        lines = text.splitlines()
        assert lines[0].startswith("#1")
        assert "5,000" in lines[0]
        assert "100" in lines[-1]

    def test_top_limits_rows(self):
        text = flood_bars(list(range(1, 100)), top=5)
        assert len(text.splitlines()) == 5

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            flood_bars([])
