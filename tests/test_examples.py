"""Smoke tests: every shipped example runs end to end.

Each example is executed as a subprocess (the way a user runs it), at the
smallest scale its CLI allows.  Marked slow: together they simulate a few
hours of network time.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 600.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Quickstart results" in out
        assert "mean sync %" in out

    def test_crawl_campaign(self):
        out = run_example(
            "crawl_campaign.py", "--scale", "0.004", "--snapshots", "3"
        )
        assert "Campaign summary" in out
        assert "unreachable / snapshot" in out

    def test_eclipse_of_sync(self):
        out = run_example(
            "eclipse_of_sync.py", "--duration-hours", "0.5", "--nodes", "25"
        )
        assert "Eclipse grip on the standing victim" in out
        assert "Restarted victim" in out
        # The eclipsed restart must actually lose synchronization the
        # clean-run twin reaches.
        lost = int(out.rsplit("cost the restarted victim", 1)[1].split()[0])
        assert lost > 0

    def test_routing_attack(self):
        out = run_example(
            "routing_attack.py", "--scale", "0.005", "--snapshots", "2"
        )
        assert "Concentration per network view" in out
        assert "Hijack plan" in out
        assert "recall 1.00" in out
        assert "0 false positives" in out

    def test_addr_flooding(self):
        out = run_example("addr_flooding.py")
        assert "Flooders caught: 3/3" in out
        assert "false positives: 0" in out
