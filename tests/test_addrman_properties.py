"""Property-based tests for addrman invariants (hypothesis)."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.bitcoin.addrman import AddrMan
from repro.simnet.addresses import NetAddr

addr_strategy = st.builds(
    NetAddr,
    ip=st.integers(min_value=1, max_value=0xFFFFFF),
    port=st.just(8333),
)

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "good", "attempt", "remove", "select"]),
        addr_strategy,
        st.floats(min_value=0, max_value=1e6),
    ),
    max_size=120,
)


def _check_invariants(addrman: AddrMan) -> None:
    # Tables are disjoint and their union is the info map.
    new_set = set(addrman._new.all_addresses())  # noqa: SLF001 - invariant check
    tried_set = set(addrman._tried.all_addresses())  # noqa: SLF001
    assert not (new_set & tried_set)
    assert new_set | tried_set == set(addrman.all_addresses())
    # in_tried flags agree with the table an address sits in.
    for addr in new_set:
        assert not addrman.info(addr).in_tried
    for addr in tried_set:
        assert addrman.info(addr).in_tried
    # Counts agree.
    assert addrman.new_count == len(new_set)
    assert addrman.tried_count == len(tried_set)
    assert len(addrman) == len(new_set) + len(tried_set)


@settings(max_examples=60, deadline=None)
@given(ops=op_strategy)
def test_invariants_hold_under_any_operation_sequence(ops):
    addrman = AddrMan(rng=random.Random(3), key=9)
    clock = 0.0
    for op, addr, dt in ops:
        clock += dt
        if op == "add":
            addrman.add(addr, now=clock)
        elif op == "good":
            addrman.good(addr, now=clock)
        elif op == "attempt":
            addrman.attempt(addr, now=clock)
        elif op == "remove":
            addrman.remove(addr)
        elif op == "select":
            selected = addrman.select(now=clock)
            assert selected is None or selected in addrman
    _check_invariants(addrman)


@settings(max_examples=40, deadline=None)
@given(addrs=st.lists(addr_strategy, min_size=1, max_size=80, unique=True))
def test_get_addr_returns_subset_without_duplicates(addrs):
    addrman = AddrMan(rng=random.Random(3), key=9)
    for addr in addrs:
        addrman.add(addr, now=0.0)
    response = addrman.get_addr(now=0.0)
    returned = [record.addr for record in response]
    assert len(returned) == len(set(returned))
    assert set(returned) <= set(addrs)


@settings(max_examples=40, deadline=None)
@given(addrs=st.lists(addr_strategy, min_size=1, max_size=60, unique=True))
def test_promotion_is_stable(addrs):
    """good() then good() again keeps exactly one tried entry per addr."""
    addrman = AddrMan(rng=random.Random(3), key=9)
    for addr in addrs:
        addrman.add(addr, now=0.0)
        addrman.good(addr, now=1.0)
        addrman.good(addr, now=2.0)
    _check_invariants(addrman)
    # Every surviving address must be tried (collisions may displace some
    # back to new, but never drop the flag inconsistently).
    assert addrman.tried_count >= 1


@settings(max_examples=30, deadline=None)
@given(
    addrs=st.lists(addr_strategy, min_size=5, max_size=60, unique=True),
    horizon_days=st.floats(min_value=1.0, max_value=60.0),
)
def test_eviction_sweep_is_complete(addrs, horizon_days):
    addrman = AddrMan(rng=random.Random(3), key=9, horizon_days=horizon_days)
    for addr in addrs:
        addrman.add(addr, now=0.0, timestamp=0.0)
    far_future = (horizon_days + 1) * 86400.0
    addrman.evict_terrible(now=far_future)
    assert len(addrman) == 0
