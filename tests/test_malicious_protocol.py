"""Tests for the protocol-mode malicious flooder node."""

from __future__ import annotations

import pytest

from repro.bitcoin import NodeConfig
from repro.netmodel.asmap import ASUniverse
from repro.netmodel.malicious import MaliciousBitcoinNode
from repro.netmodel.population import NodeClass, Population, PopulationConfig

from .conftest import make_addr, make_node


@pytest.fixture
def world(sim, rng):
    universe = ASUniverse(rng)
    population = Population(rng, universe, PopulationConfig(scale=0.002))
    return universe, population


def _flooder(sim, population, volume=5000, interval=10.0):
    flooder = MaliciousBitcoinNode(
        sim,
        make_addr(500),
        population=population,
        flood_volume=volume,
        flood_interval=interval,
    )
    flooder.start()
    return flooder


class TestMaliciousBitcoinNode:
    def test_getaddr_response_is_all_fake(self, sim, world):
        _universe, population = world
        flooder = _flooder(sim, population)
        victim = make_node(sim, 1)
        victim.bootstrap([flooder.addr])
        victim.start()
        sim.run_for(60.0)
        fakes = sum(
            1
            for addr in victim.addrman.all_addresses()
            if population.classify(addr) is NodeClass.FAKE
        )
        assert fakes > 50
        # The flooder never advertises itself in ADDR payloads; the victim
        # knows it only from its own bootstrap entry.
        info = victim.addrman.info(flooder.addr)
        assert info is not None  # bootstrap entry, promoted on connect

    def test_unsolicited_floods_push_fakes(self, sim, world):
        _universe, population = world
        flooder = _flooder(sim, population, interval=5.0)
        victim = make_node(sim, 1, NodeConfig(getaddr_on_connect=False))
        victim.bootstrap([flooder.addr])
        victim.start()
        sim.run_for(120.0)
        assert flooder.addrs_flooded > 0
        fakes = sum(
            1
            for addr in victim.addrman.all_addresses()
            if population.classify(addr) is NodeClass.FAKE
        )
        assert fakes > 10

    def test_flood_pool_bounded_by_volume(self, sim, world):
        _universe, population = world
        flooder = _flooder(sim, population, volume=50, interval=2.0)
        victim = make_node(sim, 1)
        victim.bootstrap([flooder.addr])
        victim.start()
        sim.run_for(300.0)
        assert len(flooder._flood_pool) <= 50  # noqa: SLF001

    def test_pollution_degrades_victim_success_rate(self, sim, world):
        """The attack's point: fake-filled tables make attempts fail."""
        _universe, population = world
        flooder = _flooder(sim, population, volume=2000, interval=3.0)
        honest = make_node(sim, 2)
        honest.start()
        victim = make_node(
            sim, 1, NodeConfig(track_connection_attempts=True)
        )
        victim.bootstrap([flooder.addr, honest.addr])
        victim.start()
        sim.run_for(600.0)
        rate = victim.connection_success_rate()
        assert rate is not None
        assert rate < 0.5

    def test_stop_cancels_flood_task(self, sim, world):
        _universe, population = world
        flooder = _flooder(sim, population, interval=5.0)
        sim.run_for(20.0)
        flooder.stop()
        flooded_before = flooder.addrs_flooded
        sim.run_for(60.0)
        assert flooder.addrs_flooded == flooded_before
