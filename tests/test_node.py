"""Tests for BitcoinNode: handshake, connections, relay, IBD, policies."""

from __future__ import annotations

from repro.bitcoin import (
    BitcoinNode,
    Block,
    MiningProcess,
    NodeConfig,
    PolicyConfig,
    Transaction,
    unreachable_config,
)

from .conftest import build_small_network, make_addr, make_node


def two_connected_nodes(sim, config_a=None, config_b=None):
    a = make_node(sim, 1, config_a)
    b = make_node(sim, 2, config_b)
    a.bootstrap([b.addr])
    a.start()
    b.start()
    sim.run_for(30.0)
    return a, b


class TestHandshake:
    def test_outbound_connection_establishes(self, sim):
        a, b = two_connected_nodes(sim)
        assert a.outbound_count == 1
        assert b.inbound_count == 1
        assert all(peer.established for peer in a.peers.values())
        assert all(peer.established for peer in b.peers.values())

    def test_successful_peer_promoted_to_tried(self, sim):
        a, b = two_connected_nodes(sim)
        assert a.addrman.info(b.addr).in_tried

    def test_self_advertisement_reaches_peer(self, sim):
        a, b = two_connected_nodes(sim)
        # b learned a's address from a's ADDR self-announcement.
        assert a.addr in b.addrman

    def test_versions_carry_heights(self, sim):
        a, b = two_connected_nodes(sim)
        peer_on_a = next(iter(a.peers.values()))
        assert peer_on_a.remote_height == 0


class TestConnectionManagement:
    def test_fills_outbound_slots(self, sim):
        # 20 nodes make 8 outbound slots each feasible (one connection per
        # pair: 160 directed edges fit in C(20,2)=190 pairs), though the
        # random process may leave the last slot briefly unfilled.
        nodes = build_small_network(sim, 20)
        sim.run_for(300.0)
        assert all(
            node.outbound_count >= node.config.max_outbound - 1 for node in nodes
        )
        assert any(
            node.outbound_count == node.config.max_outbound for node in nodes
        )

    def test_does_not_exceed_max_outbound(self, sim):
        nodes = build_small_network(sim, 12)
        sim.run_for(300.0)
        for node in nodes:
            assert node.outbound_count <= node.config.max_outbound

    def test_inbound_cap_enforced(self, sim):
        hub = make_node(sim, 0, NodeConfig(max_inbound=2))
        hub.start()
        clients = []
        for index in range(1, 6):
            client = make_node(sim, index, unreachable_config(max_outbound=1))
            client.bootstrap([hub.addr])
            client.start()
            clients.append(client)
        sim.run_for(120.0)
        assert hub.inbound_count <= 2

    def test_unreachable_node_accepts_nothing(self, sim):
        hidden = make_node(sim, 1, unreachable_config())
        hidden.start()
        seeker = make_node(sim, 2)
        seeker.bootstrap([hidden.addr])
        seeker.start()
        sim.run_for(60.0)
        assert seeker.outbound_count == 0
        assert hidden.inbound_count == 0

    def test_reconnects_after_peer_departure(self, sim):
        nodes = build_small_network(sim, 20)
        sim.run_for(300.0)
        victim = nodes[0]
        affected = [
            node
            for node in nodes[1:]
            if any(
                p.remote_addr == victim.addr and not p.is_inbound
                for p in node.peers.values()
            )
        ]
        assert affected, "test needs at least one out-neighbour"
        before = {node.addr: node.outbound_count for node in affected}
        victim.stop()
        sim.run_for(300.0)
        for node in affected:
            # The lost slot is refilled (within one, since the departed
            # node shrank the candidate pool too).
            assert node.outbound_count >= before[node.addr] - 1

    def test_stop_closes_all_connections(self, sim):
        a, b = two_connected_nodes(sim)
        a.stop()
        sim.run_for(10.0)
        assert a.outbound_count == 0
        assert b.inbound_count == 0

    def test_failed_attempts_logged(self, sim):
        lonely = make_node(
            sim, 1, NodeConfig(track_connection_attempts=True)
        )
        lonely.bootstrap([make_addr(50), make_addr(51)])  # nobody listens
        lonely.start()
        sim.run_for(60.0)
        assert lonely.attempt_log
        assert all(not a.succeeded for a in lonely.attempt_log)
        assert lonely.connection_success_rate() == 0.0

    def test_silent_failures_take_the_tcp_timeout(self, sim):
        lonely = make_node(sim, 1, NodeConfig(track_connection_attempts=True))
        lonely.bootstrap([make_addr(50)])
        lonely.start()
        sim.run_for(30.0)
        attempts = [a for a in lonely.attempt_log if not a.outcome.startswith("feeler")]
        assert attempts
        assert attempts[0].duration >= lonely.config.connect_timeout * 0.99


class TestFeelers:
    def test_feeler_promotes_new_to_tried(self, sim):
        target = make_node(sim, 1)
        target.start()
        feeler_node = make_node(
            sim,
            2,
            NodeConfig(
                max_outbound=0,  # isolate the feeler path
                feeler_interval=10.0,
                track_connection_attempts=True,
            ),
        )
        feeler_node.bootstrap([target.addr])
        feeler_node.start()
        sim.run_for(60.0)
        assert feeler_node.addrman.info(target.addr).in_tried
        feeler_attempts = [
            a for a in feeler_node.attempt_log if a.outcome.startswith("feeler")
        ]
        assert feeler_attempts
        # Feelers disconnect after verifying: no standing connection.
        assert feeler_node.outbound_count == 0


class TestBlockRelay:
    def test_block_propagates_through_network(self, sim):
        nodes = build_small_network(sim, 10)
        sim.run_for(120.0)
        block = Block(block_id=1, prev_id=0, height=1, created_at=sim.now, size=5000)
        nodes[0].submit_block(block)
        sim.run_for(60.0)
        assert all(node.chain.height == 1 for node in nodes)

    def test_chain_of_blocks_propagates(self, sim):
        nodes = build_small_network(sim, 8)
        sim.run_for(120.0)
        for height in range(1, 6):
            block = Block(
                block_id=height,
                prev_id=height - 1,
                height=height,
                created_at=sim.now,
                size=2000,
            )
            nodes[height % len(nodes)].submit_block(block)
            sim.run_for(30.0)
        assert all(node.chain.height == 5 for node in nodes)

    def test_tip_history_records_progress(self, sim):
        nodes = build_small_network(sim, 6)
        sim.run_for(60.0)
        node = nodes[0]
        t_before = sim.now - 0.001  # strictly before the acceptance instant
        node.submit_block(
            Block(block_id=1, prev_id=0, height=1, created_at=sim.now, size=100)
        )
        sim.run_for(30.0)
        assert node.height_at(t_before) == 0
        assert node.height_at(sim.now) == 1

    def test_duplicate_block_not_rerelayed(self, sim):
        a, b = two_connected_nodes(sim)
        block = Block(block_id=1, prev_id=0, height=1, created_at=sim.now, size=100)
        a.submit_block(block)
        sim.run_for(30.0)
        sent_before = sum(sock.messages_sent for sock in sim.network.open_sockets(a.addr))
        a.submit_block(block)  # duplicate
        sim.run_for(30.0)
        sent_after = sum(sock.messages_sent for sock in sim.network.open_sockets(a.addr))
        assert sent_after == sent_before


class TestTxRelay:
    def test_tx_propagates(self, sim):
        nodes = build_small_network(sim, 8)
        sim.run_for(120.0)
        nodes[0].submit_tx(Transaction(txid=7, size=300))
        sim.run_for(120.0)
        assert all(7 in node.mempool for node in nodes)

    def test_tx_confirmed_by_block_leaves_mempool(self, sim):
        a, b = two_connected_nodes(sim)
        a.submit_tx(Transaction(txid=7))
        sim.run_for(60.0)
        assert 7 in b.mempool
        block = Block(
            block_id=1, prev_id=0, height=1, created_at=sim.now, txids=(7,), size=400
        )
        a.submit_block(block)
        sim.run_for(60.0)
        assert 7 not in a.mempool
        assert 7 not in b.mempool


class TestIBD:
    def test_late_joiner_catches_up(self, sim):
        nodes = build_small_network(sim, 8)
        sim.run_for(120.0)
        for height in range(1, 8):
            nodes[0].submit_block(
                Block(
                    block_id=height,
                    prev_id=height - 1,
                    height=height,
                    created_at=sim.now,
                    size=2000,
                )
            )
            sim.run_for(20.0)
        joiner = make_node(sim, 99)
        joiner.bootstrap([node.addr for node in nodes])
        joiner.start()
        sim.run_for(300.0)
        assert joiner.chain.height == 7

    def test_restart_resyncs(self, sim):
        nodes = build_small_network(sim, 8)
        sim.run_for(120.0)
        nodes[0].submit_block(
            Block(block_id=1, prev_id=0, height=1, created_at=sim.now, size=1000)
        )
        sim.run_for(60.0)
        victim = nodes[3]
        victim.restart()
        nodes[0].submit_block(
            Block(block_id=2, prev_id=1, height=2, created_at=sim.now, size=1000)
        )
        sim.run_for(300.0)
        assert victim.chain.height == 2


class TestPolicies:
    def test_priority_relay_puts_blocks_first(self, sim):
        config = NodeConfig(
            policies=PolicyConfig(prioritize_block_relay=True)
        )
        node = make_node(sim, 1, config)
        node.start()
        other = make_node(sim, 2)
        other.bootstrap([node.addr])
        other.start()
        sim.run_for(30.0)
        peer = next(iter(node.peers.values()))
        from repro.bitcoin.messages import GetAddr

        peer.send_queue.clear()
        peer.enqueue_send(GetAddr())
        node._relay_block(  # noqa: SLF001 - exercising the relay path
            Block(block_id=9, prev_id=0, height=1, created_at=sim.now, size=100)
        )
        first = peer.send_queue[0]
        assert first.command in ("inv", "cmpctblock")

    def test_baseline_relay_queues_behind(self, sim):
        node = make_node(sim, 1)
        node.start()
        other = make_node(sim, 2)
        other.bootstrap([node.addr])
        other.start()
        sim.run_for(30.0)
        peer = next(iter(node.peers.values()))
        from repro.bitcoin.messages import GetAddr

        peer.send_queue.clear()
        peer.enqueue_send(GetAddr())
        node._relay_block(  # noqa: SLF001
            Block(block_id=9, prev_id=0, height=1, created_at=sim.now, size=100)
        )
        assert peer.send_queue[0].command == "getaddr"

    def test_tried_only_addr_response(self, sim):
        config = NodeConfig(policies=PolicyConfig(addr_from_tried_only=True))
        a, b = two_connected_nodes(sim, config_b=config)
        # a sent GETADDR on connect; b's new-table pollution must not leak.
        pollution = [make_addr(i + 100) for i in range(50)]
        b.bootstrap(pollution)
        # Force another getaddr cycle via a fresh connection from c.
        c = make_node(sim, 3)
        c.bootstrap([b.addr])
        c.start()
        sim.run_for(60.0)
        for addr in pollution:
            assert addr not in c.addrman

    def test_repeated_getaddr_ignored_by_default(self, sim):
        a, b = two_connected_nodes(sim)
        peer_on_a = next(iter(a.peers.values()))
        from repro.bitcoin.messages import GetAddr

        before = peer_on_a.socket.messages_sent
        peer_on_a.enqueue_send(GetAddr())
        peer_on_a.enqueue_send(GetAddr())
        a._wake_handler()  # noqa: SLF001
        sim.run_for(30.0)
        # b already served one GETADDR during the handshake; the repeats
        # produce no further ADDR traffic toward a.
        addr_msgs = peer_on_a.addr_messages_received
        sim.run_for(30.0)
        assert peer_on_a.addr_messages_received == addr_msgs


class TestGetAddrExchange:
    def test_addr_response_respects_cap(self, sim):
        b = make_node(sim, 2)
        b.bootstrap([make_addr(i + 200) for i in range(100)])
        b.start()
        a = make_node(sim, 1)
        a.bootstrap([b.addr])
        a.start()
        sim.run_for(60.0)
        # a's addrman should have learned a bounded sample, not everything.
        learned = sum(
            1 for i in range(100) if make_addr(i + 200) in a.addrman
        )
        assert 0 < learned < 100

    def test_small_addr_announcements_forwarded(self, sim):
        nodes = build_small_network(sim, 6)
        sim.run_for(120.0)
        # A brand-new listener announces itself to one peer only.
        newcomer = make_node(sim, 77)
        newcomer.bootstrap([nodes[0].addr])
        newcomer.start()
        sim.run_for(240.0)
        knowers = sum(1 for node in nodes if newcomer.addr in node.addrman)
        assert knowers >= 2  # the direct peer plus forwarded copies
