"""White-box tests of individual protocol paths in BitcoinNode.

These exercise the message handlers directly (compact-block
reconstruction, GETBLOCKTXN round trips, inventory bookkeeping, the
round-robin fairness of the handler engine) without relying on whole-
network emergent behaviour.
"""

from __future__ import annotations


from repro.bitcoin import (
    BitcoinNode,
    Block,
    NodeConfig,
    Transaction,
)
from repro.bitcoin.messages import (
    BlockMsg,
    BlockTxn,
    CmpctBlock,
    GetAddr,
    GetBlocks,
    GetData,
    Inv,
    InvItem,
    InvType,
    SendCmpct,
    TxMsg,
)

from .conftest import make_node


def connected_pair(sim, config_a=None, config_b=None):
    a = make_node(sim, 1, config_a)
    b = make_node(sim, 2, config_b)
    a.bootstrap([b.addr])
    a.start()
    b.start()
    sim.run_for(30.0)
    peer_on_a = next(iter(a.peers.values()))
    peer_on_b = next(iter(b.peers.values()))
    assert peer_on_a.established and peer_on_b.established
    return a, b, peer_on_a, peer_on_b


class TestCompactBlockPath:
    def test_reconstruction_with_full_mempool(self, sim):
        a, b, peer_a, _peer_b = connected_pair(sim)
        for txid in (11, 12, 13):
            a.mempool.add(Transaction(txid=txid))
        block = Block(
            block_id=1, prev_id=0, height=1, created_at=sim.now,
            txids=(11, 12, 13), size=1200,
        )
        a._handle_cmpctblock(peer_a, CmpctBlock(block=block))  # noqa: SLF001
        assert block.block_id in a.chain
        # Confirmed txs leave the mempool.
        assert 11 not in a.mempool

    def test_missing_txs_trigger_getblocktxn(self, sim):
        a, b, peer_a, peer_b = connected_pair(sim)
        b.mempool.add(Transaction(txid=21))
        b.mempool.add(Transaction(txid=22))
        block = Block(
            block_id=1, prev_id=0, height=1, created_at=sim.now,
            txids=(21, 22), size=900,
        )
        b.chain.add_block(block)
        # a holds neither tx: the compact block cannot reconstruct.
        a._handle_cmpctblock(peer_a, CmpctBlock(block=block))  # noqa: SLF001
        assert block.block_id not in a.chain
        assert block.block_id in a._pending_cmpct  # noqa: SLF001
        requests = [m for m in peer_a.send_queue if m.command == "getblocktxn"]
        assert len(requests) == 1
        assert set(requests[0].txids) == {21, 22}
        # Drive the exchange to completion over the wire.  (In production
        # the handler loop is already running; the direct handler call
        # above bypassed it, so wake it explicitly.)
        a._wake_handler()  # noqa: SLF001
        sim.run_for(30.0)
        assert block.block_id in a.chain
        assert 21 in {t for t in (21, 22) if t in a.mempool or True}

    def test_blocktxn_for_unknown_block_ignored(self, sim):
        a, _b, peer_a, _peer_b = connected_pair(sim)
        a._handle_blocktxn(  # noqa: SLF001
            peer_a, BlockTxn(block_id=99, txids=(1,), total_size=350)
        )
        assert 99 not in a.chain

    def test_getblocktxn_for_unknown_block_ignored(self, sim):
        a, _b, peer_a, _peer_b = connected_pair(sim)
        before = len(peer_a.send_queue)
        a._handle_getblocktxn(  # noqa: SLF001
            peer_a, __import__("repro.bitcoin.messages", fromlist=["GetBlockTxn"]).GetBlockTxn(block_id=99, txids=(1,))
        )
        assert len(peer_a.send_queue) == before

    def test_duplicate_cmpctblock_ignored(self, sim):
        a, _b, peer_a, _peer_b = connected_pair(sim)
        block = Block(block_id=1, prev_id=0, height=1, created_at=sim.now, size=500)
        a._handle_cmpctblock(peer_a, CmpctBlock(block=block))  # noqa: SLF001
        assert block.block_id in a.chain
        queue_before = len(peer_a.send_queue)
        a._handle_cmpctblock(peer_a, CmpctBlock(block=block))  # noqa: SLF001
        assert len(peer_a.send_queue) == queue_before


class TestInventoryPath:
    def test_inv_requests_only_unknown(self, sim):
        a, _b, peer_a, _peer_b = connected_pair(sim)
        block = Block(block_id=1, prev_id=0, height=1, created_at=sim.now, size=500)
        a.chain.add_block(block)
        a.mempool.add(Transaction(txid=5))
        peer_a.send_queue.clear()
        a._handle_inv(  # noqa: SLF001
            peer_a,
            Inv(
                items=(
                    InvItem(InvType.BLOCK, 1),   # already have
                    InvItem(InvType.BLOCK, 2),   # want
                    InvItem(InvType.TX, 5),      # already have
                    InvItem(InvType.TX, 6),      # want
                )
            ),
        )
        getdata = [m for m in peer_a.send_queue if m.command == "getdata"]
        assert len(getdata) == 1
        wanted = {(item.type, item.object_id) for item in getdata[0].items}
        assert wanted == {(InvType.BLOCK, 2), (InvType.TX, 6)}

    def test_blocks_in_flight_capped(self, sim):
        a, _b, peer_a, _peer_b = connected_pair(sim)
        peer_a.send_queue.clear()
        items = tuple(InvItem(InvType.BLOCK, 100 + i) for i in range(40))
        a._handle_inv(peer_a, Inv(items=items))  # noqa: SLF001
        assert len(peer_a.blocks_in_flight) <= 16

    def test_getdata_serves_known_objects(self, sim):
        a, _b, peer_a, _peer_b = connected_pair(sim)
        block = Block(block_id=1, prev_id=0, height=1, created_at=sim.now, size=500)
        a.chain.add_block(block)
        a.mempool.add(Transaction(txid=5, size=280))
        peer_a.send_queue.clear()
        a._handle_getdata(  # noqa: SLF001
            peer_a,
            GetData(
                items=(
                    InvItem(InvType.BLOCK, 1),
                    InvItem(InvType.TX, 5),
                    InvItem(InvType.BLOCK, 999),  # unknown: skipped
                )
            ),
        )
        commands = [m.command for m in peer_a.send_queue]
        assert commands == ["block", "tx"]

    def test_getblocks_serves_inventory_above_height(self, sim):
        a, _b, peer_a, _peer_b = connected_pair(sim)
        prev = 0
        for height in range(1, 6):
            block = Block(
                block_id=height, prev_id=prev, height=height,
                created_at=sim.now, size=300,
            )
            a.chain.add_block(block)
            prev = height
        peer_a.send_queue.clear()
        a._handle_getblocks(peer_a, GetBlocks(from_height=2))  # noqa: SLF001
        invs = [m for m in peer_a.send_queue if m.command == "inv"]
        assert len(invs) == 1
        ids = [item.object_id for item in invs[0].items]
        assert ids == [3, 4, 5]


class TestSendCmpctNegotiation:
    def test_high_bandwidth_flag_recorded(self, sim):
        a, _b, peer_a, _peer_b = connected_pair(sim)
        a._handle_sendcmpct(peer_a, SendCmpct(high_bandwidth=True))  # noqa: SLF001
        assert peer_a.wants_cmpct_hb
        a._handle_sendcmpct(peer_a, SendCmpct(high_bandwidth=False))  # noqa: SLF001
        assert not peer_a.wants_cmpct_hb

    def test_hb_peers_get_cmpctblock_push(self, sim):
        a, _b, peer_a, _peer_b = connected_pair(sim)
        a._handle_sendcmpct(peer_a, SendCmpct(high_bandwidth=True))  # noqa: SLF001
        peer_a.send_queue.clear()
        block = Block(block_id=1, prev_id=0, height=1, created_at=sim.now, size=400)
        a.submit_block(block)
        pushed = [m for m in peer_a.send_queue if m.command == "cmpctblock"]
        assert len(pushed) == 1

    def test_low_bandwidth_peers_get_inv(self, sim):
        a, _b, peer_a, _peer_b = connected_pair(sim)
        a._handle_sendcmpct(peer_a, SendCmpct(high_bandwidth=False))  # noqa: SLF001
        peer_a.send_queue.clear()
        block = Block(block_id=1, prev_id=0, height=1, created_at=sim.now, size=400)
        a.submit_block(block)
        announcements = [m.command for m in peer_a.send_queue]
        assert "inv" in announcements
        assert "cmpctblock" not in announcements


class TestRoundRobinFairness:
    def test_one_message_per_peer_per_pass(self, sim):
        """A chatty peer must not starve others (Fig. 9 / Alg. 3)."""
        hub = make_node(sim, 0, NodeConfig(serve_repeated_getaddr=True))
        hub.start()
        clients = []
        for index in range(1, 4):
            client = make_node(sim, index)
            client.bootstrap([hub.addr])
            client.start()
            clients.append(client)
        sim.run_for(30.0)
        peers = list(hub.peers.values())
        assert len(peers) == 3
        # Stack 5 GETADDRs on peer 0, one on the others.
        for _ in range(5):
            peers[0].enqueue_process(GetAddr())
        peers[1].enqueue_process(GetAddr())
        peers[2].enqueue_process(GetAddr())
        hub._handler_pass()  # noqa: SLF001 - single pass, no reschedule wait
        # One message consumed from EACH queue, not five from the first.
        assert len(peers[0].process_queue) == 4
        assert len(peers[1].process_queue) == 0
        assert len(peers[2].process_queue) == 0

    def test_uplink_serializes_sends(self, sim):
        a, _b, peer_a, _peer_b = connected_pair(sim)
        start = a._uplink_free_at  # noqa: SLF001
        peer_a.send_queue.clear()
        big_block = Block(
            block_id=1, prev_id=0, height=1, created_at=sim.now, size=1_000_000
        )
        a.chain.add_block(big_block)
        peer_a.enqueue_send(BlockMsg(block=big_block))
        a._handler_pass()  # noqa: SLF001
        transmit = 1_000_000 / a.config.uplink_bandwidth
        assert a._uplink_free_at >= sim.now + transmit * 0.99  # noqa: SLF001


class TestTxPath:
    def test_duplicate_tx_not_rerelayed(self, sim):
        a, _b, peer_a, _peer_b = connected_pair(sim)
        a._handle_tx(peer_a, TxMsg(txid=5, size=300))  # noqa: SLF001
        pending_after_first = {
            txid for p in a.peers.values() for txid in p.pending_tx_invs
        }
        a._handle_tx(peer_a, TxMsg(txid=5, size=300))  # noqa: SLF001
        pending_after_second = {
            txid for p in a.peers.values() for txid in p.pending_tx_invs
        }
        assert pending_after_first == pending_after_second

    def test_tx_not_echoed_to_sender(self, sim):
        a, _b, peer_a, _peer_b = connected_pair(sim)
        a._handle_tx(peer_a, TxMsg(txid=5, size=300))  # noqa: SLF001
        assert 5 not in peer_a.pending_tx_invs
