"""Tests for ``repro lint``: rules, suppressions, baseline, CLI gate.

The fixture tests write small known-bad sources to a temp tree and
assert each rule fires exactly where intended (and stays quiet on the
idiomatic deterministic alternative).  The subprocess tests at the
bottom are the PR's acceptance pins: the real tree is clean against the
committed baseline, and a wall-clock read seeded into the simulator is
caught as DET002.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint import (
    Baseline,
    Finding,
    LintConfig,
    RULES,
    Severity,
    all_rules,
    fingerprint,
    lint_paths,
    load_config,
)
from repro.lint.baseline import BaselineEntry
from repro.lint.config import LintConfigError
from repro.lint.engine import render_text
from repro.lint.suppressions import parse_suppressions

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path: Path, source: str, name: str = "mod.py", **config):
    """Write ``source`` into the temp tree and lint just that file."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source).lstrip("\n"), encoding="utf-8")
    cfg = LintConfig(root=str(tmp_path), **config)
    return lint_paths([str(path)], cfg, baseline=None)


def codes(result) -> list:
    return [finding.code for finding in result.findings]


# ----------------------------------------------------------------------
# DET001 — unseeded global RNG
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def test_module_level_random_calls_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random

            def jitter():
                return random.random() + random.uniform(0, 1)
            """,
        )
        assert codes(result) == ["DET001", "DET001"]

    def test_numpy_global_rng_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """,
        )
        assert codes(result) == ["DET001"]

    def test_argless_constructors_flagged_seeded_ok(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random

            bad = random.Random()
            good = random.Random(42)
            """,
        )
        assert codes(result) == ["DET001"]
        assert result.findings[0].line == 3

    def test_injected_stream_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def jitter(sim):
                rng = sim.random.stream("jitter")
                return rng.random()
            """,
        )
        assert codes(result) == []


# ----------------------------------------------------------------------
# DET002 — wall-clock reads
# ----------------------------------------------------------------------
class TestWallClock:
    def test_calls_and_references_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time
            import datetime
            from dataclasses import field

            stamp = time.time()
            when = datetime.datetime.now()
            deadline = time.monotonic()
            factory = field(default_factory=time.time)
            """,
        )
        # The bare ``time.time`` reference in default_factory must be
        # caught too: it never appears as a Call node.
        assert codes(result) == ["DET002"] * 4

    def test_fires_without_an_import(self, tmp_path):
        # The CI guard appends ``time.time()`` to an existing module; the
        # rule must not depend on seeing the import statement.
        result = lint_source(tmp_path, "_t = time.time()\n")
        assert codes(result) == ["DET002"]

    def test_allowlisted_boundary_is_exempt(self, tmp_path):
        source = "import time\nstamp = time.time()\n"
        clean = lint_source(
            tmp_path,
            source,
            name="allowed/clock.py",
            clock_allowlist=("allowed",),
        )
        assert codes(clean) == []
        flagged = lint_source(
            tmp_path,
            source,
            name="elsewhere/clock.py",
            clock_allowlist=("allowed",),
        )
        assert codes(flagged) == ["DET002"]

    def test_sim_clock_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def when(sim):
                return sim.now
            """,
        )
        assert codes(result) == []


# ----------------------------------------------------------------------
# DET003 — ordering-sensitive iteration over sets
# ----------------------------------------------------------------------
class TestSetIteration:
    def test_for_loop_over_local_set_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def fanout(peers):
                targets = set(peers)
                for peer in targets:
                    peer.send()
            """,
        )
        assert codes(result) == ["DET003"]

    def test_sorted_iteration_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def fanout(peers):
                targets = set(peers)
                for peer in sorted(targets):
                    peer.send()
                return len(targets), max(targets)
            """,
        )
        assert codes(result) == []

    def test_cross_file_attribute_recognized(self, tmp_path):
        # ``Peer.known`` is declared a set in one file; iterating
        # ``peer.known`` in another file must still fire.
        (tmp_path / "peer.py").write_text(
            textwrap.dedent(
                """
                from typing import Set

                class Peer:
                    def __init__(self):
                        self.known: Set[int] = set()
                """
            ),
            encoding="utf-8",
        )
        (tmp_path / "node.py").write_text(
            "def drain(peer):\n    return [item for item in peer.known]\n",
            encoding="utf-8",
        )
        result = lint_paths([str(tmp_path)], LintConfig(root=str(tmp_path)))
        assert [(f.code, Path(f.path).name) for f in result.findings] == [
            ("DET003", "node.py")
        ]

    def test_set_pop_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def take(pending):
                backlog = set(pending)
                return backlog.pop()
            """,
        )
        assert codes(result) == ["DET003"]


# ----------------------------------------------------------------------
# DET004 — id()/hash() as ordering keys
# ----------------------------------------------------------------------
class TestIdentityHash:
    def test_id_and_hash_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def tie_break(a, b):
                return min(a, b, key=id)

            def bucket(obj, n):
                return hash(obj) % n
            """,
        )
        assert codes(result) == ["DET004", "DET004"]

    def test_shadowed_name_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def lookup(table, id):
                return table[id]
            """,
        )
        assert codes(result) == []


# ----------------------------------------------------------------------
# PICK001 — unpicklable callbacks on the event queue
# ----------------------------------------------------------------------
class TestQueueLambda:
    def test_lambda_on_scheduler_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def arm(sim, node):
                sim.call_every(5.0, lambda: node.tick())
            """,
        )
        assert codes(result) == ["PICK001"]

    def test_nested_function_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def arm(sim, node):
                def tick():
                    node.tick()
                sim.schedule(5.0, tick)
            """,
        )
        assert codes(result) == ["PICK001"]

    def test_partial_over_module_function_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import functools

            def _tick(node):
                node.tick()

            def arm(sim, node):
                sim.call_every(5.0, functools.partial(_tick, node))
            """,
        )
        assert codes(result) == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_line_directive_silences_one_code(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            a = time.time()  # repro-lint: disable=DET002  (boot stamp)
            b = time.time()
            """,
        )
        assert codes(result) == ["DET002"]
        assert result.findings[0].line == 4

    def test_file_directive_silences_whole_file(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            # repro-lint: disable-file=DET002
            import time

            a = time.time()
            b = time.time()
            """,
        )
        assert codes(result) == []

    def test_directive_only_covers_named_code(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time, random

            a = time.time() + random.random()  # repro-lint: disable=DET002
            """,
        )
        assert codes(result) == ["DET001"]

    def test_unknown_code_reported_as_diagnostic(self, tmp_path):
        result = lint_source(
            tmp_path,
            "x = 1  # repro-lint: disable=DET999\n",
        )
        assert codes(result) == []
        assert any("DET999" in note for note in result.diagnostics)

    def test_parse_suppressions_bare_disable(self):
        smap = parse_suppressions(
            ["import time", "t = time.time()  # repro-lint: disable"],
            known_codes=["DET002"],
        )
        assert smap.suppressed(2, "DET002")
        assert not smap.suppressed(1, "DET002")


# ----------------------------------------------------------------------
# Baseline semantics
# ----------------------------------------------------------------------
def _finding(path="src/m.py", line=3, code="DET002", source="t = time.time()"):
    return Finding(
        path=path,
        line=line,
        col=4,
        code=code,
        message="wall clock",
        source_line=source,
    )


class TestBaseline:
    def test_grandfathered_finding_absorbed(self, tmp_path):
        finding = _finding()
        baseline = Baseline.from_findings([finding])
        match = baseline.match([finding])
        assert match.new == [] and match.baselined == [finding]
        assert match.stale == []

    def test_fingerprint_survives_line_shift(self):
        before = _finding(line=3)
        after = _finding(line=57)  # unrelated edits moved the line
        assert Baseline.from_findings([before]).match([after]).new == []

    def test_edited_line_invalidates_entry(self):
        baseline = Baseline.from_findings([_finding()])
        edited = _finding(source="t = time.time() + 1")
        match = baseline.match([edited])
        assert match.new == [edited]
        assert len(match.stale) == 1  # the old entry should be expired

    def test_matching_is_count_aware(self):
        twin_a = _finding(line=3)
        twin_b = _finding(line=9)  # identical stripped source text
        baseline = Baseline.from_findings([twin_a])
        match = baseline.match([twin_a, twin_b])
        assert len(match.baselined) == 1 and len(match.new) == 1

    def test_roundtrip_through_disk(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([_finding()]).save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1
        assert loaded.entries[0].fingerprint == fingerprint(
            "src/m.py", "DET002", "t = time.time()"
        )

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(LintError):
            Baseline.load(path)

    def test_stale_entries_reported_by_engine(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n", encoding="utf-8")
        baseline = Baseline(
            [BaselineEntry(path="m.py", code="DET002", fingerprint="0" * 16)]
        )
        result = lint_paths(
            [str(tmp_path / "m.py")],
            LintConfig(root=str(tmp_path)),
            baseline=baseline,
        )
        assert len(result.stale_baseline) == 1
        assert not result.failed
        assert "stale baseline" in render_text(result)


# ----------------------------------------------------------------------
# Config and severity plumbing
# ----------------------------------------------------------------------
class TestConfig:
    def test_load_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            textwrap.dedent(
                """
                [tool.repro-lint]
                paths = ["lib"]
                clock-allowlist = ["lib/perf"]
                disable = ["DET004"]
                baseline = "lint.json"

                [tool.repro-lint.severity]
                DET003 = "info"
                """
            ),
            encoding="utf-8",
        )
        config = load_config(tmp_path)
        assert config.paths == ("lib",)
        assert config.clock_allowlisted("lib/perf/recorder.py")
        assert not config.clock_allowlisted("lib/perfect.py")
        assert config.disable == ("DET004",)
        assert config.baseline_path() == tmp_path / "lint.json"
        assert config.severity == {"DET003": "info"}

    def test_malformed_table_raises(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint]\npaths = 3\n", encoding="utf-8"
        )
        with pytest.raises(LintConfigError):
            load_config(tmp_path)

    def test_info_severity_does_not_fail(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import time\nt = time.time()\n",
            severity={"DET002": Severity.INFO},
        )
        assert codes(result) == ["DET002"]
        assert not result.failed

    def test_disabled_rule_does_not_run(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import time\nt = time.time()\n",
            disable=("DET002",),
        )
        assert codes(result) == []

    def test_every_rule_has_catalog_prose(self):
        assert set(RULES) == {
            "DET001", "DET002", "DET003", "DET004", "PICK001",
            "ASYNC001", "ASYNC002", "ASYNC003", "ASYNC004", "HOT001",
        }
        for rule in all_rules():
            assert rule.summary and rule.rationale
            assert rule.default_severity in Severity.ALL
            assert rule.scope in ("file", "project")


# ----------------------------------------------------------------------
# The real tree, through the real CLI
# ----------------------------------------------------------------------
def run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


class TestRepositoryGate:
    def test_src_is_clean_against_committed_baseline(self):
        proc = run_cli("src")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 new finding(s)" in proc.stdout

    def test_seeded_wall_clock_read_is_caught(self, tmp_path):
        # The CI guard in miniature: copy the shipped simulator module,
        # append a wall-clock read, and the linter must fail with DET002.
        original = (
            REPO_ROOT / "src" / "repro" / "simnet" / "simulator.py"
        ).read_text(encoding="utf-8")
        seeded = tmp_path / "simulator.py"
        seeded.write_text(
            original + "\n_LINT_CANARY = time.time()\n", encoding="utf-8"
        )
        proc = run_cli(str(seeded), "--no-baseline", cwd=tmp_path)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "DET002" in proc.stdout

    def test_json_output_shape(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n", encoding="utf-8")
        proc = run_cli(str(bad), "--no-baseline", "--format", "json",
                       cwd=tmp_path)
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["failed"] is True
        assert [f["code"] for f in payload["new_findings"]] == ["DET002"]

    def test_seeded_async_sleep_is_caught(self, tmp_path):
        # The second CI canary in miniature: append a blocking call
        # inside an async def to the shipped serve app and the
        # interprocedural gate must fail with ASYNC001.
        original = (
            REPO_ROOT / "src" / "repro" / "serve" / "app.py"
        ).read_text(encoding="utf-8")
        seeded = tmp_path / "app.py"
        seeded.write_text(
            original
            + "\n\nasync def _lint_canary() -> None:\n    time.sleep(0.1)\n",
            encoding="utf-8",
        )
        proc = run_cli(str(seeded), "--no-baseline", cwd=tmp_path)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "ASYNC001" in proc.stdout

    def test_list_rules_and_explain(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for code in RULES:
            assert code in proc.stdout
        proc = run_cli("--explain", "DET003")
        assert proc.returncode == 0
        assert "DET003" in proc.stdout and "suppress with" in proc.stdout

    def test_list_rules_grouped_by_family(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        out = proc.stdout
        for family in ("ASYNC —", "DET —", "HOT —", "PICK —"):
            assert family in out
        # Family headers precede their member rules.
        assert out.index("ASYNC —") < out.index("ASYNC001")
        assert out.index("DET —") < out.index("DET001")

    def test_explain_async001_shows_worked_example(self):
        proc = run_cli("--explain", "ASYNC001")
        assert proc.returncode == 0
        assert "example:" in proc.stdout
        assert "run_in_executor" in proc.stdout

    def test_sarif_output_shape(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n", encoding="utf-8")
        proc = run_cli(str(bad), "--no-baseline", "--format", "sarif",
                       cwd=tmp_path)
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} == set(RULES)
        (finding,) = run["results"]
        assert finding["ruleId"] == "DET002"
        assert finding["level"] == "error"
        region = finding["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert finding["partialFingerprints"]["reproLint/v1"]

    def test_sarif_clean_tree_has_empty_results(self, tmp_path):
        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        proc = run_cli(str(clean), "--no-baseline", "--format", "sarif",
                       cwd=tmp_path)
        assert proc.returncode == 0
        doc = json.loads(proc.stdout)
        assert doc["runs"][0]["results"] == []

    def test_unknown_rule_code_exits_2(self):
        proc = run_cli("--explain", "NOPE999")
        assert proc.returncode == 2

    def test_update_baseline_roundtrip(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        proc = run_cli(str(bad), "--baseline", str(baseline),
                       "--update-baseline", cwd=tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        # Grandfathered now; the same invocation gates nothing...
        proc = run_cli(str(bad), "--baseline", str(baseline), cwd=tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        # ...but a second, new violation still fails.
        bad.write_text(
            "import time\nt = time.time()\nu = time.monotonic()\n",
            encoding="utf-8",
        )
        proc = run_cli(str(bad), "--baseline", str(baseline), cwd=tmp_path)
        assert proc.returncode == 1
        assert "DET002" in proc.stdout
