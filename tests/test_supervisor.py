"""Tests for the supervised runner (repro.core.supervisor / parallel)."""

import os
import time
from functools import partial

import pytest

from repro.core.parallel import (
    default_workers,
    run_multi_seed,
    run_multi_seed_supervised,
    seed_range,
)
from repro.core.supervisor import Supervisor, SupervisorConfig, run_supervised
from repro.errors import (
    CampaignAbortedError,
    ConfigurationError,
    SeedTaskError,
)

#: Fast supervision for tests: immediate retries, no polling slack.
FAST = SupervisorConfig(retries=2, backoff=0.0)


# ---------------------------------------------------------------------------
# Module-level tasks (must be picklable for worker processes)
# ---------------------------------------------------------------------------
def _double(seed):
    return seed * 2


def _raise_on(bad_seed, seed):
    if seed == bad_seed:
        raise ValueError(f"deterministic failure for {seed}")
    return seed * 2


def _always_crash(seed):
    os._exit(3)


def _crash_once(sentinel_dir, seed):
    sentinel = os.path.join(sentinel_dir, f"crashed-{seed}")
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as fh:
            fh.write("x")
        os._exit(7)
    return seed * 10


def _hang(hang_seed, seed):
    if seed == hang_seed:
        time.sleep(60.0)
    return seed * 2


def _stored_then_crash(store_root, sentinel_dir, seed):
    """Complete a stored campaign, then die once — the retry must be a
    pure cache hit (completed seeds are never recomputed)."""
    from repro.netmodel.scenario import LongitudinalConfig
    from repro.store.campaign import run_stored_campaign

    config = LongitudinalConfig(seed=seed, scale=0.002, snapshots=2)
    stored = run_stored_campaign(store_root, config)
    sentinel = os.path.join(sentinel_dir, f"crashed-{seed}")
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as fh:
            fh.write("x")
        os._exit(9)
    return stored.cached


# ---------------------------------------------------------------------------
# Happy path and ordering
# ---------------------------------------------------------------------------
class TestSupervisedHappyPath:
    def test_results_in_input_order(self):
        run = run_supervised(_double, [5, 3, 9, 1], workers=4, config=FAST)
        assert run.ok
        assert run.results == [10, 6, 18, 2]
        assert run.failures == []
        assert run.retried_indexes == []

    def test_inline_matches_parallel(self):
        seeds = [4, 7, 2]
        inline = run_supervised(_double, seeds, workers=1, config=FAST)
        parallel = run_supervised(_double, seeds, workers=3, config=FAST)
        assert inline.results == parallel.results

    def test_single_item_runs_inline(self):
        run = run_supervised(_double, [6], workers=8, config=FAST)
        assert run.results == [12]

    def test_labels_default_to_items(self):
        run = run_supervised(_double, [5, 6], workers=1, config=FAST)
        assert run.labels == [5, 6]

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="labels"):
            run_supervised(_double, [1, 2], workers=1, labels=[1])


# ---------------------------------------------------------------------------
# Crash handling
# ---------------------------------------------------------------------------
class TestCrashes:
    def test_crash_once_is_retried_and_reported(self, tmp_path):
        task = partial(_crash_once, str(tmp_path))
        run = run_supervised(task, [11, 12, 13], workers=3, config=FAST)
        assert run.ok
        assert run.results == [110, 120, 130]
        # Every seed crashed exactly once, then succeeded on retry.
        assert run.retried_indexes == [0, 1, 2]
        assert run.retried_labels == [11, 12, 13]

    def test_permanent_crash_yields_partial_results(self):
        config = SupervisorConfig(retries=1, backoff=0.0)
        run = run_supervised(_mixed_crash, [1, 2, 3], workers=3, config=config)
        assert not run.ok
        assert run.results == [2, None, 6]
        assert run.failed_indexes == [1]
        [failure] = run.failures
        assert isinstance(failure, SeedTaskError)
        assert failure.seed == 2
        assert failure.attempts == 2  # first try + one retry
        assert "crashed" in failure.cause
        assert "exit code" in failure.cause

    def test_crash_records_exit_code(self):
        config = SupervisorConfig(retries=0, backoff=0.0)
        run = run_supervised(_always_crash, [1, 2], workers=2, config=config)
        assert run.results == [None, None]
        assert all("exit code 3" in f.cause for f in run.failures)


def _mixed_crash(seed):
    if seed == 2:
        os._exit(5)
    return seed * 2


# ---------------------------------------------------------------------------
# Hang handling
# ---------------------------------------------------------------------------
class TestHangs:
    def test_hung_worker_is_timed_out(self):
        config = SupervisorConfig(timeout=1.5, retries=0, backoff=0.0)
        run = run_supervised(
            partial(_hang, 2), [1, 2, 3], workers=3, config=config
        )
        assert run.results == [2, None, 6]
        [failure] = run.failures
        assert failure.seed == 2
        assert "hung" in failure.cause

    def test_campaign_with_crash_and_hang_completes(self, tmp_path):
        """Acceptance: one worker crashing (retried, succeeds) and one
        seed hanging past its timeout; the campaign still completes with
        correct partial/retried bookkeeping."""
        config = SupervisorConfig(timeout=2.0, retries=1, backoff=0.0)
        task = partial(_crash_then_hang, str(tmp_path))
        run = run_supervised(task, [1, 2, 3, 4], workers=4, config=config)
        assert run.results[0] == 10
        assert run.results[1] is None  # hangs on every attempt
        assert run.results[2] == 30
        assert run.results[3] == 40
        assert run.failed_labels == [2]
        assert "hung" in run.failures[0].cause
        assert run.failures[0].attempts == 2
        assert run.retried_labels == [1]


def _crash_then_hang(sentinel_dir, seed):
    if seed == 1:
        return _crash_once(sentinel_dir, seed)
    if seed == 2:
        time.sleep(60.0)
    return seed * 10


# ---------------------------------------------------------------------------
# Task exceptions are not retried
# ---------------------------------------------------------------------------
class TestTaskExceptions:
    def test_exception_fails_without_retry(self):
        run = run_supervised(
            partial(_raise_on, 7), [6, 7, 8], workers=3, config=FAST
        )
        assert run.results == [12, None, 16]
        [failure] = run.failures
        assert failure.seed == 7
        assert failure.attempts == 1  # no retries for clean exceptions
        assert "ValueError" in failure.cause
        assert "deterministic failure" in failure.cause

    def test_inline_exception_is_structured_too(self):
        run = run_supervised(
            partial(_raise_on, 7), [7], workers=1, config=FAST
        )
        assert run.results == [None]
        assert run.failures[0].seed == 7


# ---------------------------------------------------------------------------
# Degradation when processes cannot be spawned
# ---------------------------------------------------------------------------
class TestDegradation:
    def test_spawn_failure_degrades_to_inline(self, monkeypatch):
        import repro.core.supervisor as sup

        class _Unspawnable:
            def __init__(self, *args, **kwargs):
                self._args = kwargs.get("args", ())

            def start(self):
                raise OSError("no processes for you")

        monkeypatch.setattr(sup.multiprocessing, "Process", _Unspawnable)
        run = run_supervised(_double, [1, 2, 3], workers=3, config=FAST)
        assert run.ok
        assert run.results == [2, 4, 6]


# ---------------------------------------------------------------------------
# Strict wrapper and configuration validation
# ---------------------------------------------------------------------------
class TestStrictWrapper:
    def test_run_multi_seed_still_returns_plain_list(self):
        assert run_multi_seed(_double, [1, 2, 3], workers=2) == [2, 4, 6]

    def test_run_multi_seed_supervised_reports_instead_of_raising(self):
        run = run_multi_seed_supervised(
            partial(_raise_on, 2), [1, 2, 3], workers=3, supervisor=FAST
        )
        assert not run.ok
        assert run.results == [2, None, 6]
        assert run.failed_labels == [2]

    def test_run_multi_seed_aborts_with_partial(self):
        with pytest.raises(CampaignAbortedError) as excinfo:
            run_multi_seed(
                partial(_raise_on, 2), [1, 2, 3], workers=3, supervisor=FAST
            )
        error = excinfo.value
        assert error.partial == [2, None, 6]
        assert [f.seed for f in error.failures] == [2]

    def test_supervisor_config_validation(self):
        with pytest.raises(ConfigurationError, match="timeout"):
            SupervisorConfig(timeout=0.0).validate()
        with pytest.raises(ConfigurationError, match="retries"):
            SupervisorConfig(retries=-1).validate()
        with pytest.raises(ConfigurationError, match="backoff_factor"):
            SupervisorConfig(backoff_factor=0.5).validate()


class TestWorkerConfiguration:
    def test_malformed_repro_workers_names_the_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError, match="REPRO_WORKERS"):
            default_workers(4)

    def test_malformed_repro_workers_is_still_a_value_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4.5")
        with pytest.raises(ValueError):
            default_workers(4)

    def test_valid_repro_workers_still_caps_by_tasks(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "64")
        assert default_workers(3) == 3

    def test_seed_range_error_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            seed_range(10, 0)


# ---------------------------------------------------------------------------
# Store integration: completed seeds are never recomputed
# ---------------------------------------------------------------------------
class TestStoreIntegration:
    def test_retry_after_crash_is_a_cache_hit(self, tmp_path):
        store_root = str(tmp_path / "store")
        task = partial(_stored_then_crash, store_root, str(tmp_path))
        run = run_supervised(task, [3, 4], workers=2, config=FAST)
        assert run.ok
        assert run.retried_labels == [3, 4]
        # The retry found each seed's completed campaign in the store:
        # the returned flags are the retry attempts' `cached` markers.
        assert run.results == [True, True]


class TestSupervisorClassSurface:
    def test_supervisor_object_reusable_configuration(self):
        supervisor = Supervisor(_double, [2, 4], workers=1, config=FAST)
        run = supervisor.run()
        assert run.results == [4, 8]
        assert run.completed() == [4, 8]


# ---------------------------------------------------------------------------
# Progress events: ordering and terminal-state invariants
# ---------------------------------------------------------------------------
def _check_event_grammar(events, n_items):
    """Assert the per-item event grammar the serving layer relies on:

    ``scheduled`` -> (``started`` [-> ``retrying``])* -> exactly one
    ``completed`` | ``failed``, and nothing after the terminal event.
    """
    by_index = {}
    for ev in events:
        by_index.setdefault(ev.index, []).append(ev)
    assert sorted(by_index) == list(range(n_items))
    for index, stream in by_index.items():
        kinds = [ev.kind for ev in stream]
        assert kinds[0] == "scheduled", (index, kinds)
        assert stream[0].attempt == 0
        assert kinds.count("scheduled") == 1, (index, kinds)
        # Exactly one terminal event, and it is last.
        terminals = [k for k in kinds if k in ("completed", "failed")]
        assert len(terminals) == 1, (index, kinds)
        assert kinds[-1] in ("completed", "failed"), (index, kinds)
        assert stream[-1].terminal
        # Every attempt opens with `started`; `retrying` only between
        # a started attempt and the next one.
        for prev, ev in zip(stream, stream[1:]):
            if ev.kind == "started":
                assert prev.kind in ("scheduled", "retrying"), (index, kinds)
                assert ev.attempt == prev.attempt + 1
            if ev.kind == "retrying":
                assert prev.kind == "started", (index, kinds)
                assert ev.attempt == prev.attempt
            if ev.kind in ("completed", "failed"):
                assert prev.kind == "started", (index, kinds)
                assert ev.attempt == prev.attempt


class TestSupervisorEvents:
    def _collect(self, task, items, **kwargs):
        events = []
        run = run_supervised(task, items, on_event=events.append, **kwargs)
        return run, events

    def test_inline_happy_path_grammar(self):
        run, events = self._collect(_double, [5, 9], workers=1, config=FAST)
        assert run.ok
        _check_event_grammar(events, 2)
        assert [ev.kind for ev in events if ev.index == 0] == [
            "scheduled", "started", "completed",
        ]

    def test_all_items_scheduled_before_any_starts(self):
        run, events = self._collect(
            _double, [1, 2, 3], workers=2, config=FAST
        )
        assert run.ok
        first_start = next(
            i for i, ev in enumerate(events) if ev.kind == "started"
        )
        scheduled = [ev for ev in events[:first_start]]
        assert [ev.kind for ev in scheduled] == ["scheduled"] * 3
        assert [ev.index for ev in scheduled] == [0, 1, 2]

    def test_parallel_happy_path_grammar(self):
        run, events = self._collect(
            _double, [5, 3, 9, 1], workers=4, config=FAST
        )
        assert run.ok
        _check_event_grammar(events, 4)
        assert all(
            ev.kind in ("scheduled", "started", "completed") for ev in events
        )

    def test_crash_retry_emits_retrying_between_attempts(self, tmp_path):
        # Two items so the supervisor stays in worker processes (a
        # single item degrades to inline, where os._exit would kill us).
        task = partial(_crash_once, str(tmp_path))
        run, events = self._collect(task, [7, 8], workers=2, config=FAST)
        assert run.ok and run.retried_labels == [7, 8]
        _check_event_grammar(events, 2)
        first = [ev for ev in events if ev.index == 0]
        assert [ev.kind for ev in first] == [
            "scheduled", "started", "retrying", "started", "completed",
        ]
        assert [ev.attempt for ev in first] == [0, 1, 1, 2, 2]
        assert "exit code" in first[2].detail

    def test_permanent_crash_terminates_with_failed(self):
        run, events = self._collect(
            _always_crash, [1, 2], workers=2,
            config=SupervisorConfig(retries=1, backoff=0.0),
        )
        assert not run.ok
        _check_event_grammar(events, 2)
        first = [ev for ev in events if ev.index == 0]
        assert [ev.kind for ev in first] == [
            "scheduled", "started", "retrying", "started", "failed",
        ]

    def test_task_exception_fails_without_retry(self):
        task = partial(_raise_on, 3)
        run, events = self._collect(task, [3, 4], workers=2, config=FAST)
        assert run.failed_labels == [3]
        _check_event_grammar(events, 2)
        bad = [ev for ev in events if ev.index == 0]
        assert [ev.kind for ev in bad] == ["scheduled", "started", "failed"]
        assert "deterministic failure" in bad[-1].detail

    def test_inline_task_exception_grammar_matches(self):
        task = partial(_raise_on, 3)
        run, events = self._collect(task, [3], workers=1, config=FAST)
        assert run.failed_labels == [3]
        _check_event_grammar(events, 1)
        assert [ev.kind for ev in events] == ["scheduled", "started", "failed"]

    def test_event_labels_and_to_dict(self):
        run, events = self._collect(
            _double, [5], workers=1, config=FAST, labels=["seed-5"]
        )
        assert run.ok
        assert {ev.label for ev in events} == {"seed-5"}
        payload = events[-1].to_dict()
        assert payload["kind"] == "completed"
        assert payload["index"] == 0
        assert payload["label"] == "seed-5"
        assert payload["attempt"] == 1

    def test_detail_is_truncated(self):
        task = partial(_raise_on, 3)
        _, events = self._collect(task, [3], workers=1, config=FAST)
        assert all(len(ev.detail) <= 500 for ev in events)

    def test_no_callback_is_the_default_and_free(self):
        run = run_supervised(_double, [2], workers=1, config=FAST)
        assert run.results == [4]
