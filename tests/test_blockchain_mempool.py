"""Tests for the blockchain (orphans, tips) and mempool."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitcoin.blockchain import Block, Blockchain, make_genesis
from repro.bitcoin.mempool import Mempool, Transaction
from repro.errors import ChainError


def chain_of(length: int, start_id: int = 1) -> list:
    blocks = []
    prev = 0
    for height in range(1, length + 1):
        block = Block(
            block_id=start_id + height - 1,
            prev_id=prev,
            height=height,
            created_at=float(height),
        )
        prev = block.block_id
        blocks.append(block)
    return blocks


class TestBlockchain:
    def test_starts_at_genesis(self):
        chain = Blockchain()
        assert chain.height == 0
        assert chain.tip.is_genesis

    def test_linear_extension(self):
        chain = Blockchain()
        for block in chain_of(5):
            assert chain.add_block(block) is True
        assert chain.height == 5

    def test_duplicate_ignored(self):
        chain = Blockchain()
        block = chain_of(1)[0]
        assert chain.add_block(block) is True
        assert chain.add_block(block) is False
        assert chain.height == 1

    def test_orphan_connects_when_parent_arrives(self):
        chain = Blockchain()
        b1, b2, b3 = chain_of(3)
        assert chain.add_block(b3) is False  # orphan
        assert chain.add_block(b2) is False  # orphan
        assert chain.orphan_count == 2
        assert chain.add_block(b1) is True  # connects all three
        assert chain.height == 3
        assert chain.orphan_count == 0

    def test_block_at_height(self):
        chain = Blockchain()
        blocks = chain_of(4)
        for block in blocks:
            chain.add_block(block)
        assert chain.block_at_height(2) == blocks[1]
        assert chain.block_at_height(99) is None

    def test_ids_above(self):
        chain = Blockchain()
        for block in chain_of(10):
            chain.add_block(block)
        assert chain.ids_above(3, limit=4) == [4, 5, 6, 7]
        assert chain.ids_above(9, limit=100) == [10]
        assert chain.ids_above(10, limit=5) == []

    def test_second_genesis_rejected(self):
        chain = Blockchain()
        rogue_genesis = Block(block_id=42, prev_id=-1, height=0, created_at=0.0)
        with pytest.raises(ChainError):
            chain.add_block(rogue_genesis)

    def test_re_adding_same_genesis_is_duplicate(self):
        chain = Blockchain()
        assert chain.add_block(make_genesis()) is False

    def test_height_mismatch_rejected(self):
        chain = Blockchain()
        bad = Block(block_id=1, prev_id=0, height=5, created_at=0.0)
        with pytest.raises(ChainError):
            chain.add_block(bad)

    def test_fork_does_not_advance_tip(self):
        chain = Blockchain()
        main = chain_of(3)
        for block in main:
            chain.add_block(block)
        fork = Block(block_id=100, prev_id=main[0].block_id, height=2, created_at=9.0)
        assert chain.add_block(fork) is False
        assert chain.height == 3
        assert chain.block_at_height(2) == main[1]

    def test_contains_and_len(self):
        chain = Blockchain()
        blocks = chain_of(2)
        for block in blocks:
            chain.add_block(block)
        assert blocks[0].block_id in chain
        assert 999 not in chain
        assert len(chain) == 3  # genesis + 2

    @settings(max_examples=25, deadline=None)
    @given(order=st.permutations(list(range(12))))
    def test_any_arrival_order_converges(self, order):
        """Blocks delivered in any order must yield the same final chain."""
        blocks = chain_of(12)
        chain = Blockchain()
        for index in order:
            chain.add_block(blocks[index])
        assert chain.height == 12
        assert chain.orphan_count == 0


class TestMempool:
    def test_add_and_get(self):
        pool = Mempool()
        tx = Transaction(txid=1, size=250)
        assert pool.add(tx) is True
        assert pool.get(1) == tx
        assert 1 in pool

    def test_duplicate_rejected(self):
        pool = Mempool()
        pool.add(Transaction(txid=1))
        assert pool.add(Transaction(txid=1)) is False
        assert len(pool) == 1

    def test_eviction_at_capacity(self):
        pool = Mempool(max_size=3)
        for txid in range(5):
            pool.add(Transaction(txid=txid))
        assert len(pool) == 3
        assert 0 not in pool  # oldest evicted
        assert 4 in pool

    def test_remove_all(self):
        pool = Mempool()
        for txid in range(5):
            pool.add(Transaction(txid=txid))
        removed = pool.remove_all([1, 3, 99])
        assert removed == 2
        assert len(pool) == 3

    def test_missing_from(self):
        pool = Mempool()
        pool.add(Transaction(txid=1))
        pool.add(Transaction(txid=2))
        assert pool.missing_from([1, 2, 3, 4]) == [3, 4]

    def test_split_known(self):
        pool = Mempool()
        pool.add(Transaction(txid=1))
        known, missing = pool.split_known([1, 2])
        assert known == [1]
        assert missing == [2]
