"""The §V protocol-variant lab and its run-store identity guarantees.

Covers the cross-product driver (`repro.core.variant_experiments`), the
cache-collision guard the registry refactor promises — distinct
variants/params can never share a run key, and every legacy boolean
spelling keys identically to its canonical variant, on both the store
and serve paths — plus the light-tier behaviors the ``unreachable-relay``
variant switches on: assist endpoints keep riding the no-cancel fast
lane, and a mixed-tier world snapshots/restores mid-run without drift.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bitcoin import NodeConfig, PolicyConfig
from repro.core import (
    CampaignConfig,
    SyncCampaignConfig,
    run_variant_matrix,
    run_stored_variant_matrix,
    variant_matrix_key,
)
from repro.core.variant_experiments import (
    CRASH_ENV,
    CRASH_EXIT_CODE,
    normalize_variants,
)
from repro.errors import ConfigurationError
from repro.netmodel import LongitudinalConfig, ProtocolConfig, ProtocolScenario
from repro.serve.submission import parse_submission
from repro.simnet import Simulator
from repro.store.campaign import campaign_key
from repro.store.runstore import RunStore


def tiny_campaign(seed: int = 7) -> SyncCampaignConfig:
    return SyncCampaignConfig(
        n_reachable=12,
        fidelity="hybrid",
        duration=600.0,
        warmup=300.0,
        pre_mined_blocks=40,
        sample_period=150.0,
        poll_spread=100.0,
        seed=seed,
    )


_IMPROVED_LEGACY = dict(
    addr_from_tried_only=True,
    tried_horizon_days=17,
    prioritize_block_relay=True,
)


# ---------------------------------------------------------------------------
# The matrix driver
# ---------------------------------------------------------------------------


class TestVariantMatrix:
    def test_axes_validation(self):
        with pytest.raises(ConfigurationError):
            normalize_variants([])
        with pytest.raises(ValueError):
            normalize_variants(["no-such-variant"])
        with pytest.raises(ConfigurationError):
            run_variant_matrix(["baseline"], tiny_campaign(), churn_levels=())
        with pytest.raises(ConfigurationError):
            run_variant_matrix(
                ["baseline"], tiny_campaign(), churn_levels=(-1.0,)
            )

    @pytest.mark.slow
    def test_cross_product_and_retention(self):
        result = run_variant_matrix(
            ["baseline", "improved"],
            tiny_campaign(),
            churn_levels=(2.0, 6.0),
            fidelities=("hybrid",),
            seeds=[7],
            workers=1,
        )
        assert len(result.cells) == 4
        # Deterministic cell order: variant -> churn -> fault -> fidelity.
        assert [
            (cell.variant_label, cell.churn_per_10min) for cell in result.cells
        ] == [
            ("baseline", 2.0),
            ("baseline", 6.0),
            ("tried-only+17d+block-prio", 2.0),
            ("tried-only+17d+block-prio", 6.0),
        ]
        table = result.retention_table()
        assert len(table) == 2
        for row in table:
            assert set(row["mean_sync"]) == {"2", "6"}
            assert row["retention"] is not None
        # Same invocation replays bit-identically.
        again = run_variant_matrix(
            ["baseline", "improved"],
            tiny_campaign(),
            churn_levels=(2.0, 6.0),
            fidelities=("hybrid",),
            seeds=[7],
            workers=1,
        )
        assert again.retention_table() == table
        assert [
            cell.sweep.per_seed[0].sync_samples for cell in again.cells
        ] == [cell.sweep.per_seed[0].sync_samples for cell in result.cells]

    @pytest.mark.slow
    def test_stored_matrix_caches_by_key(self, tmp_path):
        base = tiny_campaign()
        first = run_stored_variant_matrix(
            tmp_path / "store",
            ["baseline"],
            base,
            churn_levels=(2.0,),
            fidelities=("hybrid",),
            seeds=[7],
            workers=1,
        )
        assert not first.cached
        second = run_stored_variant_matrix(
            tmp_path / "store",
            ["baseline"],
            base,
            churn_levels=(2.0,),
            fidelities=("hybrid",),
            seeds=[7],
            workers=1,
        )
        assert second.cached
        assert second.manifest.run_id == first.manifest.run_id
        assert (
            second.result.retention_table() == first.result.retention_table()
        )


# ---------------------------------------------------------------------------
# Cache-collision guard: variant identity in run keys
# ---------------------------------------------------------------------------


class TestRunKeyIdentity:
    def test_matrix_key_separates_axes(self):
        base = tiny_campaign()

        def key(variants, churn=(2.0, 6.0), seeds=(7,)):
            return variant_matrix_key(
                base,
                normalize_variants(variants),
                churn,
                [None],
                ["hybrid"],
                list(seeds),
            )

        baseline = key(["baseline"])
        assert baseline != key(["improved"])
        assert baseline != key(["baseline", "improved"])
        assert baseline != key(["baseline"], churn=(2.0, 8.0))
        assert baseline != key(["baseline"], seeds=(8,))
        assert key(["unreachable-relay"]) != key(
            [
                PolicyConfig(
                    variant="unreachable-relay",
                    params={"assist_fraction": 0.5},
                )
            ]
        )
        # Legacy boolean spelling keys identically to its variant.
        assert key(["improved"]) == key([PolicyConfig(**_IMPROVED_LEGACY)])

    def test_campaign_key_carries_variant_identity(self):
        def key(policies):
            return campaign_key(
                LongitudinalConfig(scale=0.004, seed=5, policies=policies),
                CampaignConfig(),
            )

        keys = {
            key(None),
            key(PolicyConfig()),
            key(PolicyConfig(variant="improved")),
            key(PolicyConfig(variant="unreachable-relay")),
            key(
                PolicyConfig(
                    variant="unreachable-relay",
                    params={"assist_fraction": 0.5},
                )
            ),
        }
        assert len(keys) == 5
        assert key(PolicyConfig(**_IMPROVED_LEGACY)) == key(
            PolicyConfig(variant="improved")
        )

    def test_serve_submission_keys_carry_variant_identity(self):
        def keys(policies):
            spec = parse_submission(
                {
                    "scenario": {
                        "scale": 0.004,
                        "snapshots": 2,
                        "policies": policies,
                    },
                    "seeds": [1, 2],
                }
            )
            return [plan.key for plan in spec.plans]

        improved = keys({"variant": "improved"})
        assert improved == keys(dict(_IMPROVED_LEGACY))
        assert set(improved).isdisjoint(keys({"variant": "unreachable-relay"}))
        assert set(keys({"variant": "unreachable-relay"})).isdisjoint(
            keys(
                {
                    "variant": "unreachable-relay",
                    "params": {"assist_fraction": 0.5},
                }
            )
        )

    def test_serve_rejects_unknown_variant_as_configuration_error(self):
        with pytest.raises(ConfigurationError, match="policies"):
            parse_submission(
                {"scenario": {"policies": {"variant": "no-such-variant"}}}
            )


# ---------------------------------------------------------------------------
# unreachable-relay: the light tier keeps its fast-lane contract
# ---------------------------------------------------------------------------

_ASSIST_ALL = {"assist_fraction": 1.0}


def _assist_figures():
    scenario = ProtocolScenario(
        ProtocolConfig(
            seed=23,
            n_reachable=10,
            fidelity="hybrid",
            churn_per_10min=2.0,
            pre_mined_blocks=5,
            tx_rate=0.05,
            node_config=NodeConfig(
                policies=PolicyConfig(
                    variant="unreachable-relay", params=_ASSIST_ALL
                )
            ),
        )
    )
    scenario.start(warmup=120.0)
    events = int(scenario.sim.run_for(600.0))
    relaying = sum(
        1
        for node in scenario.light_cloud.nodes.values()
        if getattr(node, "_relay", None)
    )
    return scenario, (
        events,
        scenario.sim.now,
        tuple(node.chain.height for node in scenario.nodes),
        scenario.sync_fraction(),
        relaying,
    )


def test_assist_tier_rides_fast_lane(monkeypatch):
    """The no-cancel lane must carry assist traffic unchanged.

    The lane moves *where* light-tier events are stored, never *when*
    they fire — so the assist variant must produce identical figures
    with the fast path on and off, while actually relaying (non-empty
    relay caches prove the hot branch ran).
    """
    monkeypatch.setenv("REPRO_FAST_PATH", "1")
    fast_scenario, fast = _assist_figures()
    assert fast_scenario.sim.network.fast_path is True
    monkeypatch.setenv("REPRO_FAST_PATH", "0")
    slow_scenario, slow = _assist_figures()
    assert slow_scenario.sim.network.fast_path is False
    assert fast == slow
    assert fast[-1] > 0  # some assist endpoints cached and re-announced txs


def test_mixed_tier_snapshot_restore_under_assist():
    """Snapshot a mixed full/assist-light world mid-run; the restored
    sim must replay digest-identically (same events, clock, figures)."""
    scenario = ProtocolScenario(
        ProtocolConfig(
            seed=17,
            n_reachable=8,
            fidelity="hybrid",
            churn_per_10min=2.0,
            pre_mined_blocks=3,
            tx_rate=0.05,
            node_config=NodeConfig(
                policies=PolicyConfig(
                    variant="unreachable-relay", params=_ASSIST_ALL
                )
            ),
        )
    )
    scenario.start(warmup=60.0)
    scenario.sim.run_for(200.0)
    blob = scenario.sim.snapshot()
    restored = Simulator.restore(blob)
    assert restored.network.tier_census() == scenario.sim.network.tier_census()

    def digest(sim):
        figures = (
            int(sim.run_for(300.0)),
            sim.now,
            sim.network.tier_census(),
            sim.network.messages_delivered,
        )
        return hashlib.sha256(repr(figures).encode()).hexdigest()

    assert digest(scenario.sim) == digest(restored)


# ---------------------------------------------------------------------------
# Kill -9 mid-matrix; resume must pick up from the last completed cell
# ---------------------------------------------------------------------------

_CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.core import run_stored_variant_matrix
from tests.test_variant_lab import tiny_campaign

run_stored_variant_matrix(
    {store!r}, ["baseline", "improved"], tiny_campaign(),
    churn_levels=(2.0,), fidelities=("hybrid",), seeds=[7], workers=1,
)
"""


def _run_matrix_child(store: Path, crash_after=None) -> int:
    env = dict(os.environ)
    env.pop(CRASH_ENV, None)
    if crash_after is not None:
        env[CRASH_ENV] = str(crash_after)
    root = Path(__file__).resolve().parent.parent
    script = _CHILD_SCRIPT.format(src=str(root / "src"), store=str(store))
    env["PYTHONPATH"] = os.pathsep.join([str(root / "src"), str(root)])
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True,
        text=True, timeout=600, cwd=str(root),
    )
    if crash_after is None and proc.returncode != 0:
        raise AssertionError(f"child failed: {proc.stderr}")
    return proc.returncode


@pytest.mark.slow
class TestMatrixKillAndResume:
    def test_resumed_matrix_completes_from_checkpoint(self, tmp_path):
        store_dir = tmp_path / "interrupted"
        assert _run_matrix_child(store_dir, crash_after=0) == CRASH_EXIT_CODE
        store = RunStore(store_dir)
        manifest = store.manifests()[0]
        assert manifest.status == "running"
        assert manifest.checkpoint is not None
        assert manifest.checkpoint.snapshot_index == 0

        assert _run_matrix_child(store_dir) == 0
        resumed = store.load_manifest(manifest.run_id)
        assert resumed.status == "complete"
        assert resumed.result_digest is not None
