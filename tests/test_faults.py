"""Tests for the deterministic fault-injection subsystem (repro.faults)."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultScope,
    FaultSpec,
    PLAN_FORMAT,
)
from repro.netmodel.scenario import (
    LongitudinalConfig,
    LongitudinalScenario,
    ProtocolConfig,
    ProtocolScenario,
)
from repro.simnet.simulator import Simulator


# ---------------------------------------------------------------------------
# Plan validation and (de)serialization
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="drop", probability=0.1, start=5.0, duration=50.0),
            FaultSpec(kind="partition", start=10.0, duration=20.0,
                      scope=FaultScope(asns=(24940,), prefixes=(7,),
                                       addrs=("1.2.3.4:8333",))),
            FaultSpec(kind="crash", scope=FaultScope(asns=(3320,)),
                      downtime=60.0, state_loss=False, name="outage"),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = FaultPlan(faults=(
            FaultSpec(kind="delay", delay=0.5, jitter=0.2),
        ))
        path = plan.to_file(tmp_path / "plan.json")
        assert FaultPlan.from_file(path) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault kind"):
            FaultPlan(faults=(FaultSpec(kind="meteor"),)).validate()

    def test_drop_needs_probability(self):
        with pytest.raises(FaultInjectionError, match="probability"):
            FaultPlan(faults=(FaultSpec(kind="drop"),)).validate()

    def test_delay_needs_positive_delay(self):
        with pytest.raises(FaultInjectionError, match="positive delay"):
            FaultPlan(faults=(FaultSpec(kind="delay"),)).validate()

    def test_partition_needs_scope(self):
        with pytest.raises(FaultInjectionError, match="non-empty scope"):
            FaultPlan(faults=(FaultSpec(kind="partition"),)).validate()

    def test_crash_needs_scope(self):
        with pytest.raises(FaultInjectionError, match="non-empty scope"):
            FaultPlan(faults=(FaultSpec(kind="crash"),)).validate()

    def test_bad_scope_address(self):
        spec = FaultSpec(kind="drop", probability=0.5,
                         scope=FaultScope(addrs=("not-an-addr",)))
        with pytest.raises(FaultInjectionError, match="not parseable"):
            FaultPlan(faults=(spec,)).validate()

    def test_unknown_plan_key_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault plan key"):
            FaultPlan.from_dict({"faults": [], "bogus": 1})

    def test_unknown_fault_key_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown key"):
            FaultPlan.from_dict({"faults": [{"kind": "drop", "oops": 2}]})

    def test_format_mismatch_rejected(self):
        with pytest.raises(FaultInjectionError, match="format"):
            FaultPlan.from_dict({"faults": [], "format": PLAN_FORMAT + 1})

    def test_corrupt_json_rejected(self):
        with pytest.raises(FaultInjectionError, match="corrupt"):
            FaultPlan.from_json("{nope")

    def test_scaled_clips_probability(self):
        plan = FaultPlan(faults=(FaultSpec(kind="drop", probability=0.6),))
        assert plan.scaled(3.0).faults[0].probability == 1.0

    def test_scaled_is_linear_elsewhere(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="delay", delay=0.2, jitter=0.1),
            FaultSpec(kind="reset", rate=0.5),
            FaultSpec(kind="partition", duration=100.0,
                      scope=FaultScope(asns=(1,))),
            FaultSpec(kind="crash", downtime=60.0,
                      scope=FaultScope(asns=(1,))),
        ))
        doubled = plan.scaled(2.0)
        assert doubled.faults[0].delay == pytest.approx(0.4)
        assert doubled.faults[1].rate == pytest.approx(1.0)
        assert doubled.faults[2].duration == pytest.approx(200.0)
        assert doubled.faults[3].downtime == pytest.approx(120.0)

    def test_scaled_zero_is_empty(self):
        plan = FaultPlan(faults=(FaultSpec(kind="drop", probability=0.5),))
        assert len(plan.scaled(0.0)) == 0

    def test_scaled_negative_rejected(self):
        with pytest.raises(FaultInjectionError, match="intensity"):
            FaultPlan().scaled(-1.0)


# ---------------------------------------------------------------------------
# Injector compile-time checks
# ---------------------------------------------------------------------------
class TestInjectorCompile:
    def test_crash_without_node_provider_rejected(self):
        sim = Simulator(seed=1)
        plan = FaultPlan(faults=(
            FaultSpec(kind="crash", scope=FaultScope(asns=(1,))),
        ))
        with pytest.raises(FaultInjectionError, match="node population"):
            FaultInjector(sim, plan, asn_of=lambda addr: 1)

    def test_as_scope_without_resolver_rejected(self):
        sim = Simulator(seed=1)
        plan = FaultPlan(faults=(
            FaultSpec(kind="drop", probability=0.5,
                      scope=FaultScope(asns=(1,))),
        ))
        with pytest.raises(FaultInjectionError, match="AS-scoped"):
            FaultInjector(sim, plan)

    def test_longitudinal_scenario_rejects_crash_plans(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="crash", scope=FaultScope(asns=(3320,))),
        ))
        with pytest.raises(FaultInjectionError, match="node population"):
            LongitudinalScenario(
                LongitudinalConfig(seed=1, scale=0.002, snapshots=2,
                                   faults=plan)
            )

    def test_empty_plan_installs_no_hook(self):
        sim = Simulator(seed=1)
        sim.install_faults(FaultPlan())
        assert sim.network._fault_hook is None
        assert "faults" in sim.components


# ---------------------------------------------------------------------------
# Per-kind runtime behaviour on a small protocol world
# ---------------------------------------------------------------------------
def _scenario(plan, seed=9, n_reachable=10, pre_mined=5):
    scenario = ProtocolScenario(ProtocolConfig(
        seed=seed, n_reachable=n_reachable, pre_mined_blocks=pre_mined,
        faults=plan,
    ))
    return scenario


class TestInjectorBehaviour:
    def test_drop_all_blackholes_messages(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="drop", probability=1.0, start=0.0),
        ))
        scenario = _scenario(plan)
        scenario.start(warmup=120.0)
        stats = scenario.fault_injector.stats
        assert stats.messages_dropped > 0
        # With every message blackholed no handshake ever completes.
        assert scenario.sim.network.messages_delivered == 0

    def test_duplicate_delivers_extra_copies(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="duplicate", probability=1.0, start=0.0),
        ))
        baseline = _scenario(None)
        baseline.start(warmup=120.0)
        duplicated = _scenario(plan)
        duplicated.start(warmup=120.0)
        stats = duplicated.fault_injector.stats
        assert stats.messages_duplicated > 0
        assert (
            duplicated.sim.network.messages_delivered
            > baseline.sim.network.messages_delivered
        )

    def test_delay_injects_latency(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="delay", delay=0.2, jitter=0.5, start=0.0),
        ))
        scenario = _scenario(plan)
        scenario.start(warmup=120.0)
        assert scenario.fault_injector.stats.messages_delayed > 0

    def test_reset_closes_connections(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="reset", rate=0.5, start=30.0, duration=300.0),
        ))
        scenario = _scenario(plan)
        scenario.start(warmup=400.0)
        assert scenario.fault_injector.stats.connections_reset > 0

    def test_partition_blocks_crossing_traffic(self):
        # One node's address on one side, everyone else on the other.
        scenario = _scenario(None)
        victim = scenario.nodes[0].addr
        plan = FaultPlan(faults=(
            FaultSpec(kind="partition", start=60.0, duration=600.0,
                      scope=FaultScope(addrs=(str(victim),))),
        ))
        scenario = _scenario(plan)
        scenario.start(warmup=700.0)
        stats = scenario.fault_injector.stats
        assert stats.partition_drops + stats.connects_blocked > 0

    def test_window_deactivation(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="drop", probability=1.0, start=10.0,
                      duration=20.0, name="blip"),
        ))
        scenario = _scenario(plan)
        scenario.start(warmup=60.0)
        injector = scenario.fault_injector
        assert injector.active_faults == []
        assert (10.0, "activate", "blip") in injector.events
        assert (30.0, "deactivate", "blip") in injector.events
        # Traffic resumed after the window closed.
        assert scenario.sim.network.messages_delivered > 0

    def test_crash_stops_and_restarts_with_state_loss(self):
        scenario = _scenario(None, pre_mined=8)
        victim = scenario.nodes[0]
        plan = FaultPlan(faults=(
            FaultSpec(kind="crash", start=50.0, downtime=100.0,
                      scope=FaultScope(addrs=(str(victim.addr),))),
        ))
        scenario = _scenario(plan, pre_mined=8)
        victim = scenario.nodes[0]
        born_height = None
        scenario.start()
        born_height = victim.chain.height
        assert born_height > 0  # premined chain
        scenario.sim.run_until(60.0)
        assert not victim.running  # crashed at t=50
        assert victim.chain.height == 0  # state lost
        stats = scenario.fault_injector.stats
        assert stats.crashes == 1
        scenario.sim.run_until(200.0)
        assert victim.running  # restarted at t=150
        assert stats.restarts == 1

    def test_crash_without_state_loss_keeps_chain(self):
        scenario = _scenario(None, pre_mined=8)
        victim = scenario.nodes[0]
        plan = FaultPlan(faults=(
            FaultSpec(kind="crash", start=50.0, downtime=100.0,
                      state_loss=False,
                      scope=FaultScope(addrs=(str(victim.addr),))),
        ))
        scenario = _scenario(plan, pre_mined=8)
        victim = scenario.nodes[0]
        scenario.start()
        height = victim.chain.height
        scenario.sim.run_until(60.0)
        assert not victim.running
        assert victim.chain.height == height


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
def _chaos_plan():
    return FaultPlan(faults=(
        FaultSpec(kind="drop", probability=0.1, start=0.0),
        FaultSpec(kind="delay", delay=0.1, jitter=0.5, start=20.0,
                  duration=300.0),
        FaultSpec(kind="reset", rate=0.2, start=50.0, duration=400.0),
        FaultSpec(kind="partition", start=100.0, duration=150.0,
                  scope=FaultScope(prefixes=tuple(range(0, 0x10000, 7)))),
    ))


def _digest(scenario):
    sim = scenario.sim
    injector = scenario.fault_injector
    return (
        sim.scheduler.fired,
        sim.now,
        sim.network.messages_delivered,
        sim.network.connects_succeeded,
        sim.network.connects_timed_out,
        None if injector is None else injector.stats.as_dict(),
        None if injector is None else tuple(injector.events),
        tuple(node.chain.height for node in scenario.nodes),
        scenario.sync_fraction(),
    )


class TestDeterminism:
    def test_same_seed_same_plan_bit_identical(self):
        runs = []
        for _ in range(2):
            scenario = _scenario(_chaos_plan(), seed=17)
            scenario.start(warmup=600.0)
            runs.append(_digest(scenario))
        assert runs[0] == runs[1]

    def test_different_seeds_diverge(self):
        first = _scenario(_chaos_plan(), seed=17)
        first.start(warmup=600.0)
        second = _scenario(_chaos_plan(), seed=18)
        second.start(warmup=600.0)
        assert _digest(first) != _digest(second)

    def test_fault_rng_streams_do_not_perturb_clean_run(self):
        # A run with a plan whose windows never open must be bit-identical
        # to a run with no plan at all: fault randomness lives on its own
        # named streams and draws nothing until a window activates.
        clean = _scenario(None, seed=23)
        clean.start(warmup=300.0)
        never = FaultPlan(faults=(
            FaultSpec(kind="drop", probability=0.9, start=1e9),
        ))
        gated = _scenario(never, seed=23)
        gated.start(warmup=300.0)
        assert _digest(clean)[:5] == _digest(gated)[:5]

    def test_snapshot_mid_partition_restore_identical(self):
        """Satellite: snapshot mid-partition; the restored remainder must
        be digest-identical to the uninterrupted run."""
        plan = _chaos_plan()
        scenario = _scenario(plan, seed=29)
        scenario.start(warmup=120.0)  # inside partition window at t=120
        blob = scenario.sim.snapshot()
        restored_sim = Simulator.restore(blob)
        # Continue the original ...
        scenario.sim.run_until(700.0)
        original = _digest(scenario)
        # ... and the restored copy over the same remainder.
        restored_sim.run_until(700.0)
        restored_injector = restored_sim.components["faults"]
        assert restored_sim.scheduler.fired == original[0]
        assert restored_sim.now == original[1]
        assert restored_sim.network.messages_delivered == original[2]
        assert restored_sim.network.connects_succeeded == original[3]
        assert restored_sim.network.connects_timed_out == original[4]
        assert restored_injector.stats.as_dict() == original[5]
        assert tuple(restored_injector.events) == original[6]

    def test_snapshot_restore_on_heap_engine(self):
        plan = _chaos_plan()
        scenario = ProtocolScenario(ProtocolConfig(
            seed=29, n_reachable=10, pre_mined_blocks=5, faults=plan,
        ))
        # Protocol scenarios take the default engine; run the same check
        # through a heap-engine Simulator restored from a wheel snapshot
        # is out of scope — both engines' snapshot equivalence is pinned
        # in test_store.  Here: wheel snapshot mid-fault, restore, run.
        scenario.start(warmup=130.0)
        blob = scenario.sim.snapshot()
        restored = Simulator.restore(blob)
        scenario.sim.run_until(500.0)
        restored.run_until(500.0)
        assert restored.scheduler.fired == scenario.sim.scheduler.fired
        assert (
            restored.components["faults"].stats.as_dict()
            == scenario.fault_injector.stats.as_dict()
        )


# ---------------------------------------------------------------------------
# Run-store integration
# ---------------------------------------------------------------------------
class TestFaultsThroughStore:
    def test_fault_plan_changes_run_key(self):
        from repro.store.manifest import run_key

        base = LongitudinalConfig(seed=1, scale=0.002, snapshots=2)
        faulted = LongitudinalConfig(
            seed=1, scale=0.002, snapshots=2,
            faults=FaultPlan(faults=(
                FaultSpec(kind="drop", probability=0.1),
            )),
        )
        clean_key = run_key("campaign", base, 1, "wheel", 2)
        fault_key = run_key("campaign", faulted, 1, "wheel", 2)
        assert clean_key != fault_key

    def test_faulted_campaign_digests_identical_across_stores(self, tmp_path):
        """Acceptance: same seed + same plan => bit-identical campaign
        digests across two independent stored runs."""
        from repro.store.campaign import run_stored_campaign

        plan = FaultPlan(faults=(
            FaultSpec(kind="drop", probability=0.05, start=0.0),
            FaultSpec(kind="delay", delay=0.2, jitter=0.4, start=3600.0,
                      duration=7200.0),
        ))
        config = LongitudinalConfig(
            seed=5, scale=0.002, snapshots=2, faults=plan
        )
        first = run_stored_campaign(tmp_path / "a", config)
        second = run_stored_campaign(tmp_path / "b", config)
        assert first.manifest.result_digest == second.manifest.result_digest
        assert [s.digest for s in first.manifest.snapshots] == [
            s.digest for s in second.manifest.snapshots
        ]

    def test_faulted_campaign_cache_hit(self, tmp_path):
        from repro.store.campaign import run_stored_campaign

        plan = FaultPlan(faults=(
            FaultSpec(kind="drop", probability=0.05),
        ))
        config = LongitudinalConfig(
            seed=5, scale=0.002, snapshots=2, faults=plan
        )
        first = run_stored_campaign(tmp_path / "s", config)
        again = run_stored_campaign(tmp_path / "s", config)
        assert not first.cached
        assert again.cached
        assert again.manifest.run_id == first.manifest.run_id


# ---------------------------------------------------------------------------
# The degradation experiment
# ---------------------------------------------------------------------------
class TestSyncUnderFaults:
    def test_degradation_sweep_shapes(self):
        from repro.core import run_sync_under_faults
        from repro.core.sync_experiments import SyncCampaignConfig

        plan = FaultPlan(faults=(
            FaultSpec(kind="drop", probability=0.4, start=0.0),
        ))
        base = SyncCampaignConfig(
            n_reachable=8, churn_per_10min=2.0, pre_mined_blocks=10,
            sample_period=120.0, poll_spread=80.0, warmup=150.0,
            duration=600.0, seed=3,
        )
        result = run_sync_under_faults(
            plan, base, intensities=(0.0, 1.0), seeds=[3, 4], workers=1,
        )
        assert result.intensities == [0.0, 1.0]
        baseline, stressed = result.levels
        assert len(baseline.plan) == 0
        assert all(value == 0 for value in baseline.fault_stats.values())
        assert stressed.fault_stats["messages_dropped"] > 0
        rows = result.degradation_table()
        assert rows[0]["delta_vs_baseline"] == 0
        assert rows[1]["delta_vs_baseline"] is not None
        assert all(row["failed_seeds"] == [] for row in rows)
