"""Zero-allocation messaging: intern caches and shared payloads.

Covers the allocation-avoidance pieces of the light-cloud fast path:

* ``NetAddr.parse``'s bounded FIFO intern cache — hits return the same
  object, the eviction policy drops the oldest half, and a bounded
  cache can never grow past its cap;
* ``repro.bitcoin.light.shared_addr_records`` — light endpoints serving
  GETADDR in the same tick share one records tuple instead of
  re-timestamping per node;
* the singleton protocol replies (VERACK / GETADDR / PONG0) — enqueued
  by reference, never copied.
"""

from __future__ import annotations

import pytest

from repro.bitcoin import light as light_mod
from repro.bitcoin.light import LightNode, shared_addr_records
from repro.bitcoin.messages import GETADDR, PONG0, VERACK
from repro.simnet import addresses as addresses_mod
from repro.simnet.addresses import NetAddr, TimestampedAddr


@pytest.fixture(autouse=True)
def clean_parse_cache():
    addresses_mod._parse_cache.clear()
    yield
    addresses_mod._parse_cache.clear()


class TestParseInternCache:
    def test_roundtrip(self):
        addr = NetAddr.parse("10.1.2.3:9000")
        assert (addr.ip, addr.port) == (0x0A010203, 9000)
        assert NetAddr.parse("10.1.2.3").port == addresses_mod.DEFAULT_PORT

    def test_hit_returns_identical_object(self):
        first = NetAddr.parse("10.0.0.1:8333")
        assert NetAddr.parse("10.0.0.1:8333") is first

    def test_distinct_texts_miss(self):
        a = NetAddr.parse("10.0.0.1:8333")
        b = NetAddr.parse("10.0.0.2:8333")
        assert a is not b
        assert len(addresses_mod._parse_cache) == 2

    def test_fifo_eviction_drops_oldest_half(self, monkeypatch):
        monkeypatch.setattr(addresses_mod, "_PARSE_CACHE_MAX", 4)
        texts = [f"10.0.0.{i}:8333" for i in range(1, 5)]
        first_objects = [NetAddr.parse(text) for text in texts]
        # Cache is full; the next insert evicts the oldest two.
        NetAddr.parse("10.0.9.9:8333")
        assert texts[0] not in addresses_mod._parse_cache
        assert texts[1] not in addresses_mod._parse_cache
        # Survivors still interned, evictees re-parse to fresh objects.
        assert NetAddr.parse(texts[2]) is first_objects[2]
        assert NetAddr.parse(texts[3]) is first_objects[3]
        fresh = NetAddr.parse(texts[0])
        assert fresh == first_objects[0]
        assert fresh is not first_objects[0]

    def test_cache_never_exceeds_cap(self, monkeypatch):
        monkeypatch.setattr(addresses_mod, "_PARSE_CACHE_MAX", 8)
        for i in range(100):
            NetAddr.parse(f"172.16.{i // 250}.{i % 250 + 1}:9001")
        assert len(addresses_mod._parse_cache) <= 8

    def test_invalid_text_not_cached(self):
        with pytest.raises(ValueError):
            NetAddr.parse("not-an-address")
        with pytest.raises(ValueError):
            NetAddr.parse("300.0.0.1")
        assert not addresses_mod._parse_cache


@pytest.fixture(autouse=True)
def clean_payload_memo():
    light_mod._payload_memo.clear()
    yield
    light_mod._payload_memo.clear()


class TestSharedAddrPayloads:
    def test_same_table_same_tick_shares_records(self):
        table = tuple(NetAddr(ip=0xC0A80000 + i) for i in range(1, 20))
        first = shared_addr_records(table, 100.0)
        assert shared_addr_records(table, 100.0) is first
        assert first == tuple(TimestampedAddr(a, 100.0) for a in table)

    def test_different_tick_different_records(self):
        table = (NetAddr(ip=0x0B000001),)
        assert shared_addr_records(table, 1.0) is not shared_addr_records(
            table, 2.0
        )

    def test_memo_bounded(self, monkeypatch):
        monkeypatch.setattr(light_mod, "_PAYLOAD_MEMO_MAX", 4)
        table = (NetAddr(ip=0x0B000001),)
        for tick in range(50):
            shared_addr_records(table, float(tick))
        assert len(light_mod._payload_memo) <= 4

    def test_no_per_node_copies(self, sim):
        """Two cloud nodes sharing a table share the payload object."""
        table = tuple(NetAddr(ip=0xC0A80000 + i) for i in range(1, 10))
        node_a = LightNode(sim, NetAddr(ip=0x0A000001), addr_table=table)
        node_b = LightNode(sim, NetAddr(ip=0x0A000002), addr_table=table)
        assert node_a.addr_table is node_b.addr_table
        now = sim.now
        assert shared_addr_records(node_a.addr_table, now) is shared_addr_records(
            node_b.addr_table, now
        )


class TestSingletonReplies:
    def test_module_singletons_are_single(self):
        from repro.bitcoin import messages

        assert messages.VERACK is VERACK
        assert messages.GETADDR is GETADDR
        assert messages.PONG0 is PONG0
        assert PONG0.nonce == 0

    def test_singletons_are_immutable_messages(self):
        for singleton in (VERACK, GETADDR, PONG0):
            assert not hasattr(singleton, "__dict__")
            with pytest.raises(AttributeError):
                singleton.command = "mutated"
