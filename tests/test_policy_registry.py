"""The pluggable policy registry: canonicalization and equivalence.

The refactor's contract is twofold.  First, ``PolicyConfig`` is now a
``(variant, params)`` reference into ``repro.bitcoin.policy`` and every
legacy boolean spelling must canonicalize onto the equivalent variant —
same dataclass fields, same label, same run-store identity.  Second, the
extraction must be draw-for-draw invisible: a scenario run under the
``baseline``/``improved`` variants must be *bit-identical* (snapshot
digests, not just figures) to one configured through the old booleans.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle

import pytest

from repro.bitcoin import NodeConfig, PolicyConfig
from repro.bitcoin.config import ADDRMAN_HORIZON_DAYS
from repro.bitcoin.policy import (
    LightTierPolicy,
    PolicyVariant,
    build_policies,
    get_variant,
    register,
    variant_names,
)
from repro.core import (
    CampaignConfig,
    CampaignRunner,
    SyncCampaignConfig,
    run_sync_campaign,
)
from repro.netmodel import (
    LongitudinalConfig,
    LongitudinalScenario,
    ProtocolConfig,
    ProtocolScenario,
)


# ---------------------------------------------------------------------------
# Canonicalization
# ---------------------------------------------------------------------------


class TestCanonicalization:
    def test_default_is_baseline(self):
        config = PolicyConfig()
        assert config.variant == "baseline"
        assert config.params == {}
        assert config.addr_from_tried_only is False
        assert config.tried_horizon_days == ADDRMAN_HORIZON_DAYS
        assert config.prioritize_block_relay is False

    def test_legacy_improved_booleans_map_onto_improved(self):
        legacy = PolicyConfig(
            addr_from_tried_only=True,
            tried_horizon_days=17,
            prioritize_block_relay=True,
        )
        assert legacy.variant == "improved"
        assert legacy.params == {}
        assert dataclasses.asdict(legacy) == dataclasses.asdict(
            PolicyConfig.improved()
        )

    def test_partial_legacy_stays_baseline_with_diffs(self):
        config = PolicyConfig(addr_from_tried_only=True)
        assert config.variant == "baseline"
        assert config.params == {"addr_from_tried_only": True}
        assert config.label() == "tried-only"

    def test_labels_preserved(self):
        assert PolicyConfig().label() == "baseline"
        assert PolicyConfig(tried_horizon_days=17).label() == "17d"
        assert (
            PolicyConfig(
                addr_from_tried_only=True,
                tried_horizon_days=17,
                prioritize_block_relay=True,
            ).label()
            == "tried-only+17d+block-prio"
        )

    def test_numeric_params_coerced_for_key_stability(self):
        int_spelling = PolicyConfig(tried_horizon_days=17)
        float_spelling = PolicyConfig(tried_horizon_days=17.0)
        assert dataclasses.asdict(int_spelling) == dataclasses.asdict(
            float_spelling
        )
        assert isinstance(int_spelling.params["tried_horizon_days"], float)

    def test_default_equal_params_dropped(self):
        explicit = PolicyConfig(
            variant="unreachable-relay", params={"assist_fraction": 0.25}
        )
        assert explicit.params == {}
        assert dataclasses.asdict(explicit) == dataclasses.asdict(
            PolicyConfig(variant="unreachable-relay")
        )

    def test_variant_and_conflicting_legacy_rejected(self):
        with pytest.raises(ValueError):
            PolicyConfig(
                variant="improved",
                params={"addr_from_tried_only": True},
                addr_from_tried_only=False,
            )

    def test_unknown_variant_lists_known_names(self):
        with pytest.raises(ValueError, match="baseline"):
            PolicyConfig(variant="no-such-variant")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError):
            PolicyConfig(variant="baseline", params={"mystery_knob": 1})

    def test_bool_knob_is_strict(self):
        with pytest.raises(ValueError):
            PolicyConfig(variant="baseline", params={"addr_from_tried_only": 1})

    def test_from_dict_round_trip(self):
        config = PolicyConfig(
            variant="unreachable-relay", params={"assist_fraction": 0.5}
        )
        clone = PolicyConfig.from_dict(dataclasses.asdict(config))
        assert dataclasses.asdict(clone) == dataclasses.asdict(config)

    def test_from_dict_accepts_legacy_keys(self):
        clone = PolicyConfig.from_dict(
            {
                "addr_from_tried_only": True,
                "tried_horizon_days": 17,
                "prioritize_block_relay": True,
            }
        )
        assert clone.variant == "improved"

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            PolicyConfig.from_dict({"variant": "baseline", "bogus": 1})

    def test_pickle_round_trip(self):
        config = PolicyConfig(variant="churn-resilient")
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.prioritize_block_relay is True


# ---------------------------------------------------------------------------
# The registry itself
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        assert set(variant_names()) >= {
            "baseline",
            "improved",
            "unreachable-relay",
            "churn-resilient",
        }

    def test_duplicate_registration_rejected(self):
        existing = get_variant("baseline")
        with pytest.raises(ValueError):
            register(existing)

    def test_variant_must_cover_universal_knobs(self):
        with pytest.raises(ValueError):
            register(
                PolicyVariant(
                    name="half-baked",
                    description="missing the universal knobs",
                    defaults={"addr_from_tried_only": False},
                    addr_factory=get_variant("baseline").addr_factory,
                    relay_factory=get_variant("baseline").relay_factory,
                    conn_factory=get_variant("baseline").conn_factory,
                )
            )

    def test_build_policies_bundle(self):
        bundle = build_policies(PolicyConfig(variant="improved"))
        assert bundle.variant == "improved"
        assert bundle.addr.horizon_days == 17.0
        assert bundle.relay.block_to_front is True
        assert bundle.light is None

    def test_unreachable_relay_bundle_has_light_policy(self):
        bundle = build_policies(PolicyConfig(variant="unreachable-relay"))
        assert isinstance(bundle.light, LightTierPolicy)

    def test_bundle_pickles(self):
        bundle = build_policies(PolicyConfig(variant="unreachable-relay"))
        clone = pickle.loads(pickle.dumps(bundle))
        assert clone.variant == bundle.variant
        assert clone.knobs == bundle.knobs


# ---------------------------------------------------------------------------
# Digest equivalence: the refactor must be draw-for-draw invisible
# ---------------------------------------------------------------------------

_IMPROVED_LEGACY = dict(
    addr_from_tried_only=True,
    tried_horizon_days=17,
    prioritize_block_relay=True,
)


def _protocol_digest(policies):
    scenario = ProtocolScenario(
        ProtocolConfig(
            seed=11,
            n_reachable=8,
            fidelity="hybrid",
            churn_per_10min=2.0,
            pre_mined_blocks=3,
            tx_rate=0.05,
            node_config=NodeConfig(policies=policies),
        )
    )
    scenario.start(warmup=120.0)
    scenario.sim.run_for(400.0)
    return hashlib.sha256(scenario.sim.snapshot()).hexdigest()


def test_protocol_digest_variant_equals_boolean_spelling():
    assert _protocol_digest(
        PolicyConfig(variant="improved")
    ) == _protocol_digest(PolicyConfig(**_IMPROVED_LEGACY))


def test_protocol_digest_baseline_distinct_from_improved():
    assert _protocol_digest(PolicyConfig()) != _protocol_digest(
        PolicyConfig(variant="improved")
    )


def test_sync_campaign_variant_equals_boolean_spelling():
    base = dict(
        n_reachable=10,
        fidelity="hybrid",
        churn_per_10min=4.0,
        pre_mined_blocks=10,
        warmup=200.0,
        duration=600.0,
        seed=33,
    )
    variant = run_sync_campaign(
        SyncCampaignConfig(policies=PolicyConfig(variant="improved"), **base)
    )
    legacy = run_sync_campaign(
        SyncCampaignConfig(policies=PolicyConfig(**_IMPROVED_LEGACY), **base)
    )
    assert variant.sync_samples == legacy.sync_samples
    assert variant.total_departures == legacy.total_departures


def _campaign_figures(policies):
    config = LongitudinalConfig(
        scale=0.004,
        snapshots=2,
        campaign_days=2.0,
        seed=9,
        fidelity="hybrid",
        policies=policies,
    )
    runner = CampaignRunner(LongitudinalScenario(config), CampaignConfig())
    result = runner.run()
    return [
        (
            snap.when,
            len(snap.connected),
            len(snap.unreachable),
            len(snap.responsive),
            snap.new_unreachable,
            snap.new_responsive,
        )
        for snap in result.snapshots
    ]


def test_longitudinal_variant_equals_boolean_spelling():
    assert _campaign_figures(
        PolicyConfig(variant="improved")
    ) == _campaign_figures(PolicyConfig(**_IMPROVED_LEGACY))


def test_longitudinal_no_policies_equals_baseline_variant():
    # ``policies=None`` keeps the pre-registry crawl path; the baseline
    # variant must compose the same gossip tables draw-for-draw.
    assert _campaign_figures(None) == _campaign_figures(PolicyConfig())
