"""Further simnet details: periodic tasks, scheduler stress, probes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet import ProbeBehavior, ProbeResult, Simulator

from .conftest import make_addr


class TestSchedulerStress:
    @settings(max_examples=25, deadline=None)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=80
        )
    )
    def test_events_always_fire_in_nondecreasing_time(self, delays):
        sim = Simulator(seed=0)
        fired_times = []
        for delay in delays:
            sim.schedule(delay, lambda: fired_times.append(sim.now))
        sim.run()
        assert fired_times == sorted(fired_times)
        assert len(fired_times) == len(delays)

    @settings(max_examples=20, deadline=None)
    @given(
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=50),
    )
    def test_exactly_uncancelled_events_fire(self, cancel_mask):
        sim = Simulator(seed=0)
        fired = []
        handles = []
        for index, _cancel in enumerate(cancel_mask):
            handles.append(sim.schedule(1.0 + index, fired.append, index))
        for handle, cancel in zip(handles, cancel_mask):
            if cancel:
                handle.cancel()
        sim.run()
        expected = [i for i, cancel in enumerate(cancel_mask) if not cancel]
        assert fired == expected

    def test_deep_event_chains(self):
        sim = Simulator(seed=0)
        counter = {"n": 0}

        def chain():
            counter["n"] += 1
            if counter["n"] < 5000:
                sim.schedule(0.001, chain)

        sim.schedule(0.001, chain)
        sim.run()
        assert counter["n"] == 5000
        assert sim.now == pytest.approx(5.0, rel=0.01)


class TestProbeTimings:
    def test_fin_probe_fast_silent_probe_slow(self, sim):
        fin_addr, silent_addr = make_addr(1), make_addr(2)
        sim.network.set_probe_behavior(fin_addr, ProbeBehavior.FIN)
        arrivals = {}

        def record(name):
            def cb(result):
                arrivals[name] = (sim.now, result)

            return cb

        start = sim.now
        sim.network.probe(make_addr(9), fin_addr, record("fin"), timeout=5.0)
        sim.network.probe(make_addr(9), silent_addr, record("silent"), timeout=5.0)
        sim.run_for(10.0)
        fin_time, fin_result = arrivals["fin"]
        silent_time, silent_result = arrivals["silent"]
        assert fin_result is ProbeResult.FIN
        assert silent_result is ProbeResult.SILENT
        assert fin_time - start < 1.0
        assert silent_time - start == pytest.approx(5.0, abs=0.01)

    def test_paper_probe_validation_scenario(self, sim):
        """The paper validated Alg. 2 against three in-house unreachable
        nodes: all three answered FIN.  Reproduce exactly that."""
        in_house = [make_addr(i) for i in (1, 2, 3)]
        for addr in in_house:
            sim.network.set_probe_behavior(addr, ProbeBehavior.FIN)
        results = []
        for addr in in_house:
            sim.network.probe(make_addr(9), addr, results.append)
        sim.run_for(5.0)
        assert results == [ProbeResult.FIN] * 3


class TestRunUntilSemantics:
    def test_max_events_bound(self, sim):
        for index in range(10):
            sim.schedule(1.0, lambda: None)
        dispatched = sim.run_until(5.0, max_events=4)
        assert dispatched == 4
        assert sim.scheduler.pending >= 6
        # The clock must NOT have jumped past the undispatched events:
        # resuming the run dispatches them without time-ordering errors.
        assert sim.now == pytest.approx(1.0)
        sim.run_until(5.0)
        assert sim.now == 5.0
        assert sim.scheduler.pending == 0

    def test_quiescent_network_advances_cleanly(self, sim):
        sim.run_until(1000.0)
        assert sim.now == 1000.0
        assert sim.scheduler.fired == 0
