"""Integration tests for the Fig. 2 campaign pipeline."""

from __future__ import annotations

import pytest

from repro.core import CampaignConfig, CampaignRunner
from repro.netmodel import LongitudinalConfig, LongitudinalScenario, NodeClass


@pytest.fixture(scope="module")
def campaign():
    scenario = LongitudinalScenario(
        LongitudinalConfig(scale=0.004, snapshots=6, seed=17)
    )
    runner = CampaignRunner(scenario)
    result = runner.run()
    return scenario, result


class TestCampaignShape:
    def test_all_snapshots_ran(self, campaign):
        _scenario, result = campaign
        assert len(result.snapshots) == 6

    def test_fig3_counts_consistent(self, campaign):
        _scenario, result = campaign
        for row in result.fig3_rows():
            assert row["common"] <= min(row["bitnodes"], row["dns"])
            assert row["excluded_common"] <= min(
                row["excluded_bitnodes"], row["excluded_dns"]
            )
            assert row["connected"] > 0
            assert row["dns_only_connected"] <= row["connected"]

    def test_fig4_cumulative_monotone(self, campaign):
        _scenario, result = campaign
        series = result.fig4_series()
        cumulative = series["cumulative"]
        assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))
        assert all(
            per <= cum for per, cum in zip(series["per_snapshot"], cumulative)
        )
        # New addresses keep appearing (the Fig. 4 gap).
        assert cumulative[-1] > series["per_snapshot"][0]

    def test_fig5_responsive_subset_of_unreachable(self, campaign):
        _scenario, result = campaign
        assert result.cumulative_responsive <= result.cumulative_unreachable

    def test_responsive_share_in_paper_ballpark(self, campaign):
        _scenario, result = campaign
        share = len(result.cumulative_responsive) / len(
            result.cumulative_unreachable
        )
        # Paper: 23.5% cumulative; generous band for a tiny scale.
        assert 0.10 < share < 0.45

    def test_unreachable_set_mostly_pure(self, campaign):
        """The measured unreachable set is view-filtered, not ground truth.

        Reachable nodes missed by both Bitnodes and the DNS database are
        (mis)classified unreachable — the paper acknowledges exactly this
        impurity (§IV-A: unreachable addresses "could be reachable or
        responsive nodes that are not running Bitcoin anymore").  The
        impurity must stay a small minority.
        """
        scenario, result = campaign
        mislabeled = sum(
            1
            for addr in result.cumulative_unreachable
            if scenario.population.classify(addr) is NodeClass.REACHABLE
        )
        assert mislabeled / len(result.cumulative_unreachable) < 0.10

    def test_addr_composition_dominated_by_unreachable(self, campaign):
        _scenario, result = campaign
        share = result.mean_addr_reachable_share()
        assert 0.05 < share < 0.35  # paper: 14.9%

    def test_flooders_detected(self, campaign):
        scenario, result = campaign
        report = result.merged_detection(scenario.universe.asn_of)
        assert report.count == len(scenario.flooders)
        detected = {finding.peer for finding in report.findings}
        assert detected == {flooder.addr for flooder in scenario.flooders}

    def test_honest_servers_not_flagged(self, campaign):
        scenario, result = campaign
        report = result.merged_detection()
        flagged = {finding.peer for finding in report.findings}
        honest = set(scenario.servers)
        assert not (flagged & honest)

    def test_churn_matrix_builds(self, campaign):
        _scenario, result = campaign
        stats = result.churn_stats()
        assert stats.unique_nodes > 0
        assert stats.mean_alive_per_snapshot > 0
        assert len(stats.arrivals) == 5

    def test_hosting_reports_cover_three_classes(self, campaign):
        scenario, result = campaign
        reports = result.hosting_reports(scenario.universe.asn_of)
        assert set(reports) == {"reachable", "unreachable", "responsive"}
        for report in reports.values():
            assert report.total_nodes > 0
            assert report.distinct_ases > 1


class TestCampaignConfig:
    def test_scaled_threshold(self):
        config = CampaignConfig()
        assert config.scaled_threshold(1.0) == 1000
        assert config.scaled_threshold(0.01) == 10
        assert config.scaled_threshold(0.001) == 10  # floor

    def test_probe_can_be_disabled(self):
        scenario = LongitudinalScenario(
            LongitudinalConfig(scale=0.002, snapshots=2, seed=18)
        )
        config = CampaignConfig(probe_enabled=False)
        result = CampaignRunner(scenario, config).run()
        assert all(not snap.responsive for snap in result.snapshots)

    def test_partial_run(self):
        scenario = LongitudinalScenario(
            LongitudinalConfig(scale=0.002, snapshots=5, seed=19)
        )
        result = CampaignRunner(scenario).run(snapshots=2)
        assert len(result.snapshots) == 2
