"""Tests for topology metrics and block-propagation measurement."""

from __future__ import annotations

import pytest

from repro.bitcoin import Block, NodeConfig
from repro.core.propagation import PropagationTracker
from repro.errors import AnalysisError
from repro.netmodel import (
    ProtocolConfig,
    ProtocolScenario,
    connection_graph,
    degree_histogram,
    pairwise_distances_sample,
    topology_stats,
)

from .conftest import build_small_network


@pytest.fixture(scope="module")
def warm_nodes():
    from repro.simnet import Simulator

    sim = Simulator(seed=88)
    nodes = build_small_network(sim, 20)
    sim.run_for(300.0)
    return sim, nodes


class TestConnectionGraph:
    def test_edges_are_established_outbound(self, warm_nodes):
        _sim, nodes = warm_nodes
        graph = connection_graph(nodes)
        assert graph.number_of_nodes() == 20
        for u, v in graph.edges:
            node = next(n for n in nodes if n.addr == u)
            assert any(
                p.remote_addr == v and not p.is_inbound and p.established
                for p in node.peers.values()
            )

    def test_stopped_nodes_excluded(self, warm_nodes):
        sim, nodes = warm_nodes
        graph_before = connection_graph(nodes)
        assert graph_before.number_of_nodes() == 20
        # A non-running node disappears from the graph view.
        fake_stopped = list(nodes)
        fake_stopped[0].running = False
        try:
            graph = connection_graph(fake_stopped)
            assert graph.number_of_nodes() == 19
        finally:
            fake_stopped[0].running = True


class TestTopologyStats:
    def test_stats_shape(self, warm_nodes):
        _sim, nodes = warm_nodes
        stats = topology_stats(nodes)
        assert stats.nodes == 20
        assert 4.0 < stats.mean_outdegree <= 8.0
        assert stats.largest_component_share == 1.0  # well-connected
        assert stats.diameter is not None and stats.diameter <= 4

    def test_propagation_rounds_estimate(self, warm_nodes):
        _sim, nodes = warm_nodes
        stats = topology_stats(nodes)
        rounds = stats.expected_propagation_rounds
        # log(20)/log(~7) ≈ 1.5 — and never below 1 for n > d.
        assert 1.0 < rounds < 3.0

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            topology_stats([])

    def test_degree_histogram_sums_to_nodes(self, warm_nodes):
        _sim, nodes = warm_nodes
        histogram = degree_histogram(nodes)
        assert sum(histogram.values()) == 20
        assert max(histogram) <= 8

    def test_pairwise_distances(self, warm_nodes):
        _sim, nodes = warm_nodes
        lengths = pairwise_distances_sample(nodes, sample=50)
        assert lengths
        assert all(1 <= length <= 5 for length in lengths)


class TestPropagationTracker:
    def test_records_arrivals_network_wide(self):
        scenario = ProtocolScenario(
            ProtocolConfig(n_reachable=15, seed=91, block_interval=120.0)
        )
        scenario.start(warmup=600.0)
        tracker = PropagationTracker(scenario)
        scenario.sim.run_for(900.0)
        completed = tracker.completed_blocks(min_coverage=0.9)
        assert completed
        population = len(scenario.running_nodes())
        for record in completed:
            assert record.coverage(population) >= 0.9
        delays = tracker.percentile_delays(90.0)
        assert delays
        assert all(delay >= 0 for delay in delays)
        assert tracker.mean_delay_to(90.0) < 60.0

    def test_percentile_none_when_not_reached(self):
        from repro.core.propagation import BlockPropagation

        record = BlockPropagation(block_id=1, created_at=0.0)
        record.arrivals = {"a": 1.0}
        assert record.delay_percentile(population=10, percentile=90) is None
        assert record.delay_percentile(population=1, percentile=90) == 1.0

    def test_chains_existing_callbacks(self):
        scenario = ProtocolScenario(
            ProtocolConfig(n_reachable=6, seed=92, mining=False)
        )
        hits = []
        scenario.nodes[0].on_tip_advanced = lambda node, block: hits.append(
            block.block_id
        )
        PropagationTracker(scenario)
        scenario.start(warmup=120.0)
        scenario.nodes[0].submit_block(
            Block(block_id=1, prev_id=0, height=1, created_at=0.0, size=100)
        )
        assert hits == [1]

    def test_attach_new_nodes_idempotent(self):
        scenario = ProtocolScenario(
            ProtocolConfig(n_reachable=6, seed=93, mining=False)
        )
        tracker = PropagationTracker(scenario)
        assert tracker.attach_new_nodes() == 0
        scenario.start()
        scenario.add_replacement_node()
        assert tracker.attach_new_nodes() == 1


class TestOutdegreeAblation:
    @pytest.mark.slow
    def test_lower_outdegree_slows_propagation(self):
        """The §IV-B argument: outdegree 2 propagates slower than 8."""

        def run(max_outbound):
            scenario = ProtocolScenario(
                ProtocolConfig(
                    n_reachable=40,
                    seed=94,
                    block_interval=120.0,
                    node_config=NodeConfig(max_outbound=max_outbound),
                )
            )
            scenario.start(warmup=900.0)
            tracker = PropagationTracker(scenario)
            scenario.sim.run_for(1500.0)
            delays = tracker.percentile_delays(90.0, min_coverage=0.85)
            return sum(delays) / len(delays) if delays else float("inf")

        fast = run(8)
        slow = run(2)
        assert slow > fast
