"""Tests for NetAddr parsing, groups, and timestamped records."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.simnet.addresses import DEFAULT_PORT, NetAddr, TimestampedAddr


class TestNetAddr:
    def test_parse_with_port(self):
        addr = NetAddr.parse("10.1.2.3:1234")
        assert addr.dotted == "10.1.2.3"
        assert addr.port == 1234

    def test_parse_without_port_uses_default(self):
        assert NetAddr.parse("1.2.3.4").port == DEFAULT_PORT

    def test_str_roundtrip(self):
        text = "192.168.7.9:8333"
        assert str(NetAddr.parse(text)) == text

    def test_group16(self):
        addr = NetAddr.parse("10.1.2.3")
        assert addr.group16 == (10 << 8) | 1

    def test_same_group_same_slash16(self):
        a = NetAddr.parse("10.1.0.1")
        b = NetAddr.parse("10.1.255.254")
        c = NetAddr.parse("10.2.0.1")
        assert a.group16 == b.group16
        assert a.group16 != c.group16

    def test_bad_octet_rejected(self):
        with pytest.raises(ValueError):
            NetAddr.parse("256.1.1.1")

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            NetAddr.parse("10.1.1")

    def test_port_bounds(self):
        with pytest.raises(ValueError):
            NetAddr(ip=1, port=0)
        with pytest.raises(ValueError):
            NetAddr(ip=1, port=70000)

    def test_ip_bounds(self):
        with pytest.raises(ValueError):
            NetAddr(ip=-1)
        with pytest.raises(ValueError):
            NetAddr(ip=1 << 32)

    def test_hashable_and_equal(self):
        a = NetAddr.parse("1.2.3.4:8333")
        b = NetAddr.parse("1.2.3.4:8333")
        assert a == b
        assert len({a, b}) == 1

    def test_distinct_ports_distinct_addrs(self):
        a = NetAddr.parse("1.2.3.4:8333")
        b = NetAddr.parse("1.2.3.4:8334")
        assert a != b

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_parse_dotted_roundtrip(self, ip):
        addr = NetAddr(ip=ip)
        assert NetAddr.parse(addr.dotted).ip == ip

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=1, max_value=0xFFFF),
    )
    def test_ordering_is_total(self, ip, port):
        a = NetAddr(ip=ip, port=port)
        b = NetAddr(ip=(ip + 1) & 0xFFFFFFFF or 1, port=port)
        assert (a < b) != (b < a) or a == b


class TestTimestampedAddr:
    def test_fields(self):
        record = TimestampedAddr(NetAddr.parse("1.1.1.1"), 42.0)
        assert record.timestamp == 42.0
        assert "1.1.1.1" in str(record)

    def test_frozen(self):
        record = TimestampedAddr(NetAddr.parse("1.1.1.1"), 42.0)
        with pytest.raises(Exception):
            record.timestamp = 7.0
