"""Tests for the PING keepalive round."""

from __future__ import annotations

from repro.bitcoin import NodeConfig

from .conftest import make_node


class TestPingRound:
    def test_pings_flow_and_pongs_return(self, sim):
        a = make_node(sim, 1, NodeConfig(ping_interval=10.0))
        b = make_node(sim, 2)
        a.bootstrap([b.addr])
        a.start()
        b.start()
        sim.run_for(60.0)
        peer_on_b = next(iter(b.peers.values()))
        sock_to_a = peer_on_b.socket
        # b answered pings: its socket to a carried pong traffic.
        assert sock_to_a.messages_sent > 2  # version/verack/addr + pongs

    def test_disabled_by_default(self, sim):
        a = make_node(sim, 1)
        assert a.config.ping_interval is None
        a.start()
        sim.run_for(30.0)
        assert a._ping_task is None  # noqa: SLF001

    def test_stop_cancels_ping_task(self, sim):
        a = make_node(sim, 1, NodeConfig(ping_interval=5.0))
        a.start()
        assert a._ping_task is not None  # noqa: SLF001
        a.stop()
        assert a._ping_task is None  # noqa: SLF001

    def test_ping_nonces_vary(self, sim):
        a = make_node(sim, 1, NodeConfig(ping_interval=5.0))
        b = make_node(sim, 2)
        a.bootstrap([b.addr])
        a.start()
        b.start()
        sim.run_for(3.0)
        peer = next(iter(a.peers.values()), None)
        if peer is None:
            sim.run_for(10.0)
            peer = next(iter(a.peers.values()))
        a._send_ping_round()  # noqa: SLF001
        a._send_ping_round()  # noqa: SLF001
        nonces = [m.nonce for m in peer.send_queue if m.command == "ping"]
        assert len(nonces) >= 2
        assert len(set(nonces)) == len(nonces)
