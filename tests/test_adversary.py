"""The adversarial sync-attack suite: plans, behaviors, sweeps, detection.

Four layers under test:

* **Plan layer** — eager validation with named-field errors, JSON
  round-trips, count redistribution for the sweep axis.
* **Behavior layer** — deterministic replay (same seed, bit-identical
  attacker counters and sync figures), snapshot/restore mid-attack,
  eclipse slot monopoly and restart starvation, the staller trap.
* **Experiment layer** — degradation sweeps, the run-store cache
  (same key → stored result, no simulation), kill-and-resume
  digest-equivalence through the level-wise checkpoints.
* **Detection layer** — the acceptance pins: all 73 paper-parameter
  flooders flagged with zero false positives on an honest run, plus the
  documented blind spot (ADDR heuristics do not see sync-stallers).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.adversary import (
    AttackPlan,
    AttackScope,
    AttackerSpec,
    install_attack,
)
from repro.bitcoin import BitcoinNode, NodeConfig
from repro.core import (
    DetectionMetrics,
    GetAddrConfig,
    GetAddrCrawler,
    SyncCampaignConfig,
    detect_flooders,
    run_attack_sweep,
    run_stored_attack_sweep,
    run_sync_campaign,
    score_detection,
    time_to_detection,
)
from repro.core.attack_experiments import (
    CRASH_ENV,
    CRASH_EXIT_CODE,
    attack_sweep_key,
)
from repro.core.getaddr import CrawlResult, PeerHarvest
from repro.core.malicious_detect import DetectionReport, MaliciousFinding
from repro.core.pipeline import CRAWLER_ADDR
from repro.errors import ConfigurationError
from repro.netmodel import (
    LongitudinalConfig,
    ProtocolConfig,
    ProtocolScenario,
)
from repro.simnet import NetAddr, Simulator
from repro.store.runstore import RunStore


def flood_plan(count: int = 2, volume: int = 1500) -> AttackPlan:
    return AttackPlan(
        attackers=(
            AttackerSpec(
                kind="addr_flooder", count=count, flood_volume=volume
            ),
        )
    )


def small_scenario(attack, seed: int = 9, n: int = 12) -> ProtocolScenario:
    return ProtocolScenario(
        ProtocolConfig(
            n_reachable=n,
            seed=seed,
            fidelity="hybrid",
            mining=False,
            attack=attack,
        )
    )


class TestPlanValidation:
    """Satellite: eager ConfigurationError naming the offending field."""

    def test_empty_scope_rejected(self):
        with pytest.raises(ConfigurationError, match="scope is empty"):
            AttackPlan(
                attackers=(
                    AttackerSpec(kind="addr_flooder", scope=AttackScope()),
                )
            ).validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown attacker kind"):
            AttackPlan(attackers=(AttackerSpec(kind="ddos"),)).validate()

    def test_reachable_count_exceeding_network_rejected(self):
        plan = AttackPlan(
            attackers=(
                AttackerSpec(kind="addr_flooder", count=30, tier="reachable"),
            )
        )
        with pytest.raises(
            ConfigurationError, match="exceed the network size"
        ):
            plan.validate_for(12)
        plan.validate_for(30)  # exactly fitting is fine

    def test_unreachable_attackers_not_bounded_by_network(self):
        flood_plan(count=500).validate_for(12)

    def test_victim_overlapping_scope_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot eclipse itself"):
            AttackerSpec(
                kind="eclipse",
                victim="0.9.0.1:8333",
                scope=AttackScope(addrs=("0.9.0.1:8333",)),
            ).validate()

    def test_victim_only_for_eclipse(self):
        with pytest.raises(ConfigurationError, match="only meaningful"):
            AttackerSpec(kind="addr_flooder", victim="0.9.0.1:8333").validate()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown attack plan key"):
            AttackPlan.from_dict({"atackers": []})
        with pytest.raises(ConfigurationError, match="unknown key"):
            AttackPlan.from_dict(
                {"attackers": [{"kind": "addr_flooder", "countt": 2}]}
            )
        with pytest.raises(ConfigurationError, match="scope has unknown key"):
            AttackPlan.from_dict(
                {
                    "attackers": [
                        {"kind": "addr_flooder", "scope": {"asn": [1]}}
                    ]
                }
            )

    def test_protocol_config_validates_plan_eagerly(self):
        plan = AttackPlan(
            attackers=(
                AttackerSpec(kind="addr_flooder", count=99, tier="reachable"),
            )
        )
        with pytest.raises(ConfigurationError, match="exceed the network"):
            ProtocolConfig(n_reachable=10, attack=plan).validate()

    def test_longitudinal_accepts_only_flooders(self):
        config = LongitudinalConfig(
            scale=0.005,
            attack=AttackPlan(attackers=(AttackerSpec(kind="eclipse"),)),
        )
        with pytest.raises(ConfigurationError, match="protocol fidelity"):
            config.validate()

    def test_install_rejects_victim_inside_cohort_placement(self):
        scenario = small_scenario(None)
        plan = AttackPlan(
            attackers=(
                AttackerSpec(
                    kind="eclipse",
                    scope=AttackScope(addrs=("0.200.0.9:8333",)),
                    victim="0.200.0.9:8333",
                ),
            )
        )
        # The spec-level overlap is caught before install even starts.
        with pytest.raises(ConfigurationError, match="cannot eclipse itself"):
            install_attack(scenario, plan)

    def test_install_rejects_unknown_victim(self):
        scenario = small_scenario(None)
        plan = AttackPlan(
            attackers=(
                AttackerSpec(kind="eclipse", victim="0.250.0.9:8333"),
            )
        )
        with pytest.raises(ConfigurationError, match="not a standing node"):
            install_attack(scenario, plan)


class TestPlanSerialization:
    def test_json_round_trip(self, tmp_path):
        plan = AttackPlan(
            attackers=(
                AttackerSpec(
                    kind="addr_flooder",
                    count=3,
                    tier="reachable",
                    scope=AttackScope(asns=(3320,)),
                    flood_volume=4000,
                ),
                AttackerSpec(kind="sync_staller", height_lead=500),
            )
        )
        path = plan.to_file(tmp_path / "plan.json")
        assert AttackPlan.from_file(path) == plan
        assert AttackPlan.from_dict(plan.to_dict()) == plan

    def test_null_scope_means_hosting_placement(self):
        plan = AttackPlan.from_dict(
            {"attackers": [{"kind": "addr_flooder", "scope": None}]}
        )
        assert plan.attackers[0].scope is None
        # A present-but-empty scope object is a config mistake.
        with pytest.raises(ConfigurationError, match="scope is empty"):
            AttackPlan.from_dict(
                {"attackers": [{"kind": "addr_flooder", "scope": {}}]}
            )

    def test_shipped_example_plan_parses(self):
        path = (
            Path(__file__).resolve().parent.parent
            / "examples"
            / "attackplan_flood.json"
        )
        plan = AttackPlan.from_file(path)
        assert plan.total_count == 3
        assert plan.attackers[0].scope.asns == (3320,)

    def test_with_total_largest_remainder(self):
        plan = AttackPlan(
            attackers=(
                AttackerSpec(kind="addr_flooder", count=2),
                AttackerSpec(kind="inv_spammer", count=1),
            )
        )
        scaled = plan.with_total(9)
        assert [s.count for s in scaled.attackers] == [6, 3]
        assert scaled.total_count == 9
        assert plan.with_total(0).attackers == ()
        # Specs rounding to zero are dropped, total preserved.
        one = plan.with_total(1)
        assert one.total_count == 1
        assert len(one.attackers) == 1


class TestDeterministicReplay:
    """Acceptance pin: same seed → bit-identical attack outcomes."""

    MIXED = AttackPlan(
        attackers=(
            AttackerSpec(kind="addr_flooder", count=2, flood_volume=800),
            AttackerSpec(kind="inv_spammer", count=1),
            AttackerSpec(kind="sync_staller", count=1, tier="reachable"),
        )
    )

    def _run(self):
        scenario = small_scenario(self.MIXED)
        scenario.start(warmup=300.0)
        scenario.sim.run_for(600.0)
        assert scenario.attack_force is not None
        return scenario.attack_force.stats(), scenario.sync_fraction()

    def test_same_seed_bit_identical(self):
        stats_a, sync_a = self._run()
        stats_b, sync_b = self._run()
        assert stats_a == stats_b
        assert sync_a == sync_b
        assert stats_a["addrs_flooded"] > 0
        assert stats_a["invs_spammed"] > 0

    def test_snapshot_restore_mid_attack(self):
        # Uninterrupted run to t=900.
        scenario = small_scenario(self.MIXED)
        scenario.start(warmup=300.0)
        scenario.sim.run_for(600.0)
        base = scenario.attack_force.stats()

        # Snapshot at t=450, restore into a fresh process-image, finish.
        scenario2 = small_scenario(self.MIXED)
        scenario2.start(warmup=300.0)
        scenario2.sim.run_for(150.0)
        blob = scenario2.sim.snapshot()
        restored = Simulator.restore(blob)
        restored.run_for(450.0)
        assert restored.now == scenario.sim.now
        # The force travels inside the snapshot: recover the attacker
        # nodes through the restored network (listeners for the
        # reachable tier, live sockets for the unreachable one).
        handlers = set(restored.network._listeners.values())
        for sockets in restored.network._sockets_by_addr.values():
            for sock in sockets:
                if sock.handler is not None:
                    handlers.add(sock.handler)
        stats = {}
        for handler in handlers:
            if hasattr(handler, "adv_rng"):
                for key, value in handler.stats().items():
                    stats[key] = stats.get(key, 0) + value
        assert stats["addrs_flooded"] == base["addrs_flooded"]
        assert stats["invs_spammed"] == base["invs_spammed"]
        for key, value in stats.items():
            assert base[key] == value, key


class TestEclipseAndStaller:
    PLAN = AttackPlan(
        attackers=(
            AttackerSpec(kind="eclipse", count=3, connections=6),
            AttackerSpec(
                kind="sync_staller",
                count=1,
                tier="reachable",
                height_lead=300,
                announce_interval=30.0,
            ),
        )
    )

    @pytest.fixture(scope="class")
    def attacked(self):
        scenario = ProtocolScenario(
            ProtocolConfig(
                n_reachable=12,
                seed=5,
                fidelity="hybrid",
                mining=True,
                block_interval=120.0,
                pre_mined_blocks=20,
                attack=self.PLAN,
            )
        )
        scenario.start(warmup=300.0)
        scenario.sim.run_for(1200.0)
        return scenario

    def test_eclipse_monopolizes_victim_slots(self, attacked):
        force = attacked.attack_force
        victim = attacked.nodes[0]
        attacker_addrs = set(force.attacker_addrs())
        grip = [
            p
            for p in victim.peers.values()
            if p.is_inbound and p.remote_addr in attacker_addrs
        ]
        # 3 attackers x 6 sockets each, held open in parallel.
        assert len(grip) >= 12
        assert force.stats()["eclipse_links"] >= 12
        assert force.stats()["eclipse_addrs_sent"] > 0

    def test_eclipsed_restart_cannot_sync(self, attacked):
        force = attacked.attack_force
        reborn = BitcoinNode(
            attacked.sim,
            attacked.universe.allocate_address(3320),
            attacked._clone_node_config(),
        )
        reborn.bootstrap(force.attacker_addrs())
        reborn.start()
        attacked.sim.run_for(900.0)
        # Connected to attackers only, the reborn node downloads nothing:
        # campaigners withhold every block, stallers deliver none.
        assert reborn.outbound_count > 0
        assert reborn.chain.height == 0
        assert attacked.best_height > 20
        stats = force.stats()
        assert stats["blocks_withheld"] + stats["stalled_getdata"] > 0

    def test_staller_traps_block_downloads(self, attacked):
        force = attacked.attack_force
        staller = force.by_kind("sync_staller")[0]
        assert staller.stats()["stalled_getdata"] > 0
        # Victims that asked it for blocks still have the requests in
        # flight — the staller never answered.
        trapped = [
            node
            for node in attacked.nodes
            for peer in node.peers.values()
            if peer.remote_addr == staller.addr and peer.blocks_in_flight
        ]
        assert trapped

    def test_addr_heuristic_blind_to_stallers(self, attacked):
        """Documented gap: sync-stallers never touch the ADDR plane."""
        force = attacked.attack_force
        staller = force.by_kind("sync_staller")[0]
        honest = [node.addr for node in attacked.running_nodes()]
        crawler = GetAddrCrawler(
            attacked.sim,
            CRAWLER_ADDR,
            GetAddrConfig(max_rounds=6),
        )
        crawl = crawler.run_to_completion(honest + [staller.addr])
        # The staller listens on the reachable tier, so any census the
        # detector consults (Bitnodes, DNS seeds) includes it.
        report = detect_flooders(
            crawl,
            reachable_known=set(honest) | {staller.addr},
            min_addresses=1,
        )
        flagged = {finding.peer for finding in report.findings}
        # It answered the crawl (self-advertisement only) yet is not
        # flaggable: its one ADDR record is a genuine reachable address.
        harvest = crawl.harvests[staller.addr]
        assert harvest.connected
        assert staller.addr not in flagged
        metrics = score_detection(report, [staller.addr], honest)
        assert metrics.recall == 0.0


class TestDetectionScoring:
    def _paper_crawl(self):
        """A synthetic Fig. 8 crawl at the paper's parameters."""
        result = CrawlResult()
        honest_pool = {NetAddr(ip=(900 << 16) | i, port=8333) for i in range(1, 40)}
        for i, addr in enumerate(sorted(honest_pool)):
            result.harvests[addr] = PeerHarvest(
                target=addr,
                connected=True,
                total_records=3000,
                addresses={addr} | set(list(honest_pool)[:5]),
            )
        attackers = []
        for i in range(73):
            addr = NetAddr(ip=(1000 << 16) | (i + 1), port=8333)
            attackers.append(addr)
            # Fig. 8 volumes: 8 above 100K, the top one above 400K.
            volume = 450_000 if i == 0 else (120_000 if i < 8 else 20_000)
            result.harvests[addr] = PeerHarvest(
                target=addr,
                connected=True,
                total_records=volume,
                addresses={
                    NetAddr(ip=(2000 + i) << 16 | j, port=8333)
                    for j in range(1, 50)
                },
            )
        return result, attackers, sorted(honest_pool)

    def test_paper_parameters_full_recall_zero_fp(self):
        """Acceptance pin: 73/73 flagged, 0 false positives."""
        crawl, attackers, honest = self._paper_crawl()
        report = detect_flooders(
            crawl, reachable_known=set(honest), min_addresses=1000
        )
        metrics = score_detection(report, attackers, honest)
        assert len(metrics.detected) == 73
        assert metrics.recall == 1.0
        assert metrics.false_positives == []
        assert metrics.false_positive_rate == 0.0
        assert metrics.precision == 1.0
        assert report.count == 73
        assert report.max_flood > 400_000
        assert report.count_over(100_000) == 8

    def test_honest_hybrid_run_zero_false_positives(self):
        """Acceptance pin: the heuristic is quiet on a clean network."""
        scenario = small_scenario(None, seed=31)
        scenario.start(warmup=300.0)
        scenario.sim.run_for(600.0)
        honest = [node.addr for node in scenario.running_nodes()]
        crawler = GetAddrCrawler(
            scenario.sim, CRAWLER_ADDR, GetAddrConfig(max_rounds=6)
        )
        crawl = crawler.run_to_completion(honest)
        # Even with the threshold floored, no honest peer is flagged:
        # every honest ADDR response carries a reachable address.
        report = detect_flooders(
            crawl, reachable_known=set(honest), min_addresses=1
        )
        assert report.findings == []
        metrics = score_detection(report, [], honest)
        assert metrics.false_positive_rate == 0.0
        assert metrics.honest_scored > 0

    def test_time_to_detection(self):
        a1 = NetAddr(ip=1 << 16, port=1)
        a2 = NetAddr(ip=2 << 16, port=1)
        finding = lambda addr: MaliciousFinding(  # noqa: E731
            peer=addr, unreachable_sent=5000, unique_sent=100, addr_messages=5
        )
        reports = [
            (100.0, DetectionReport(findings=[], min_addresses=1000)),
            (200.0, DetectionReport(findings=[finding(a1)], min_addresses=1000)),
            (
                300.0,
                DetectionReport(
                    findings=[finding(a1), finding(a2)], min_addresses=1000
                ),
            ),
        ]
        ttd = time_to_detection(reports, [a1, a2])
        assert ttd == {a1: 200.0, a2: 300.0}
        metrics = DetectionMetrics(
            detected=[a1, a2],
            missed=[],
            false_positives=[],
            honest_scored=10,
            time_to_detection=ttd,
        )
        assert metrics.mean_time_to_detection == 250.0
        assert metrics.as_dict()["recall"] == 1.0


def tiny_campaign(seed: int = 7) -> SyncCampaignConfig:
    return SyncCampaignConfig(
        n_reachable=12,
        fidelity="hybrid",
        duration=600.0,
        warmup=300.0,
        pre_mined_blocks=40,
        sample_period=150.0,
        poll_spread=100.0,
        seed=seed,
    )


@pytest.mark.slow
class TestAttackSweep:
    def test_degradation_and_replay(self):
        plan = flood_plan(count=3, volume=2000)
        base = tiny_campaign()
        sweep = run_attack_sweep(
            plan, base, counts=(0, 3), seeds=[7], workers=1
        )
        table = sweep.degradation_table()
        assert [row["attackers"] for row in table] == [0, 3]
        assert table[0]["delta_vs_baseline"] == 0.0
        assert sweep.levels[1].attack_stats["addrs_flooded"] > 0
        # Same seed → identical sync-fraction table, bit for bit.
        again = run_attack_sweep(
            plan, base, counts=(0, 3), seeds=[7], workers=1
        )
        assert again.degradation_table() == table
        assert [
            level.sweep.sync_samples for level in again.levels
        ] == [level.sweep.sync_samples for level in sweep.levels]

    def test_count_zero_is_attack_free(self):
        base = tiny_campaign()
        clean = run_sync_campaign(base)
        sweep = run_attack_sweep(
            flood_plan(), base, counts=(0,), seeds=[base.seed], workers=1
        )
        assert sweep.levels[0].sweep.per_seed[0].sync_samples == (
            clean.sync_samples
        )
        assert sweep.levels[0].sweep.per_seed[0].attack_stats is None

    def test_stored_sweep_caches_by_key(self, tmp_path):
        plan = flood_plan(count=3, volume=2000)
        base = tiny_campaign()
        first = run_stored_attack_sweep(
            tmp_path / "store", plan, base,
            counts=(0, 3), seeds=[7], workers=1,
        )
        assert not first.cached
        second = run_stored_attack_sweep(
            tmp_path / "store", plan, base,
            counts=(0, 3), seeds=[7], workers=1,
        )
        # Acceptance pin: same run key → cache hit, identical table.
        assert second.cached
        assert second.manifest.run_id == first.manifest.run_id
        assert (
            second.result.degradation_table()
            == first.result.degradation_table()
        )

    def test_key_separates_plans_and_counts(self):
        base = tiny_campaign()
        key = attack_sweep_key(flood_plan(), base, (0, 2), [7])
        assert key != attack_sweep_key(flood_plan(4), base, (0, 2), [7])
        assert key != attack_sweep_key(flood_plan(), base, (0, 3), [7])
        assert key != attack_sweep_key(flood_plan(), base, (0, 2), [8])
        assert key == attack_sweep_key(flood_plan(), base, (0, 2), [7])


_CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.core import run_stored_attack_sweep
from tests.test_adversary import flood_plan, tiny_campaign

run_stored_attack_sweep(
    {store!r}, flood_plan(count=3, volume=2000), tiny_campaign(),
    counts=(0, 3), seeds=[7], workers=1,
)
"""


def _run_sweep_child(store: Path, crash_after=None) -> int:
    env = dict(os.environ)
    env.pop(CRASH_ENV, None)
    if crash_after is not None:
        env[CRASH_ENV] = str(crash_after)
    root = Path(__file__).resolve().parent.parent
    script = _CHILD_SCRIPT.format(src=str(root / "src"), store=str(store))
    env["PYTHONPATH"] = os.pathsep.join(
        [str(root / "src"), str(root)]
    )
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True,
        text=True, timeout=600, cwd=str(root),
    )
    if crash_after is None and proc.returncode != 0:
        raise AssertionError(f"child failed: {proc.stderr}")
    return proc.returncode


@pytest.mark.slow
class TestSweepKillAndResume:
    """Kill -9 after level 0's checkpoint; resume must be digest-equal."""

    def test_resumed_sweep_is_digest_identical(self, tmp_path):
        interrupted = tmp_path / "interrupted"
        uninterrupted = tmp_path / "uninterrupted"

        assert _run_sweep_child(interrupted, crash_after=0) == CRASH_EXIT_CODE
        store = RunStore(interrupted)
        manifest = store.manifests()[0]
        assert manifest.status == "running"
        assert manifest.checkpoint is not None
        assert manifest.checkpoint.snapshot_index == 0

        # Same invocation resumes from the level checkpoint...
        assert _run_sweep_child(interrupted) == 0
        resumed = store.load_manifest(manifest.run_id)
        assert resumed.status == "complete"

        # ...and an uninterrupted twin lands on the same result digest.
        assert _run_sweep_child(uninterrupted) == 0
        fresh = RunStore(uninterrupted).load_manifest(manifest.run_id)
        assert resumed.result_digest == fresh.result_digest
