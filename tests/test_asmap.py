"""Tests for the AS universe and Table-I hosting distributions."""

from __future__ import annotations

import random

import pytest

from repro.analysis.stats import k_to_cover
from repro.errors import ScenarioError
from repro.netmodel import calibration as cal
from repro.netmodel.asmap import (
    ASUniverse,
    HostingProfile,
    PROFILES,
    build_class_weights,
)


@pytest.fixture
def universe():
    return ASUniverse(random.Random(4))


class TestBuildClassWeights:
    @pytest.mark.parametrize("name", ["reachable", "unreachable", "responsive"])
    def test_head_matches_table1(self, name):
        profile = PROFILES[name]
        pairs = build_class_weights(profile)
        assert pairs[: len(profile.top)] == profile.top

    @pytest.mark.parametrize("name", ["reachable", "unreachable", "responsive"])
    def test_total_as_count(self, name):
        profile = PROFILES[name]
        assert len(build_class_weights(profile)) == profile.as_count

    @pytest.mark.parametrize(
        "name,target",
        [
            ("reachable", cal.AS_50PCT_REACHABLE),
            ("unreachable", cal.AS_50PCT_UNREACHABLE),
            ("responsive", cal.AS_50PCT_RESPONSIVE),
        ],
    )
    def test_k50_calibrated(self, name, target):
        pairs = build_class_weights(PROFILES[name])
        counts = {asn: weight for asn, weight in pairs}
        assert abs(k_to_cover(counts, 0.5) - target) <= 2

    def test_mass_sums_to_100(self):
        pairs = build_class_weights(PROFILES["reachable"])
        assert sum(weight for _asn, weight in pairs) == pytest.approx(100.0)

    def test_tiny_as_count_rejected(self):
        profile = HostingProfile("bad", PROFILES["reachable"].top, 10, 5)
        with pytest.raises(ScenarioError):
            build_class_weights(profile)


class TestASUniverse:
    def test_sample_asn_unknown_class(self, universe):
        with pytest.raises(ScenarioError):
            universe.sample_asn("martians")

    def test_sampling_respects_head_weights(self, universe):
        rng = random.Random(8)
        draws = [universe.sample_asn("reachable", rng) for _ in range(4000)]
        share_3320 = draws.count(3320) / len(draws)
        # Table I: AS3320 hosts 8.08% of reachable nodes.
        assert 0.05 < share_3320 < 0.12

    def test_allocated_addresses_are_unique(self, universe):
        seen = set()
        for _ in range(500):
            asn = universe.sample_asn("unreachable")
            addr = universe.allocate_address(asn)
            assert addr not in seen
            seen.add(addr)

    def test_asn_roundtrip(self, universe):
        for _ in range(100):
            asn = universe.sample_asn("responsive")
            addr = universe.allocate_address(asn)
            assert universe.asn_of(addr) == asn

    def test_unknown_address_maps_to_none(self, universe):
        from repro.simnet.addresses import NetAddr

        assert universe.asn_of(NetAddr(ip=0xFFFF0001)) is None

    def test_as_gets_more_prefixes_when_full(self, universe):
        asn = universe.sample_asn("reachable")
        groups = set()
        # A /16 holds 65534 hosts; exceed it to force a second prefix.
        for _ in range(70000):
            groups.add(universe.allocate_address(asn).group16)
        assert len(groups) >= 2

    def test_class_distributions_overlap_partially(self, universe):
        top = {
            name: {asn for asn, _w in universe.class_distribution(name)[:20]}
            for name in ("reachable", "unreachable", "responsive")
        }
        common = top["reachable"] & top["unreachable"] & top["responsive"]
        # Table I: exactly 10 ASes common in the three top-20 lists.
        assert len(common) == 10
