"""Tests for the address crawler (Fig. 2 left), Algorithm 1, Algorithm 2."""

from __future__ import annotations

import pytest

from repro.core.crawler import AddressCrawler
from repro.core.getaddr import GetAddrConfig, GetAddrCrawler
from repro.core.prober import ProbeConfig, VerProber
from repro.errors import ScenarioError
from repro.netmodel.addr_server import AddrServer
from repro.netmodel.seeds import AddressViews
from repro.simnet import ProbeBehavior

from .conftest import make_addr

CRAWLER = make_addr(60000)


class TestAddressCrawler:
    def _views(self):
        bitnodes = {make_addr(i) for i in range(10)}
        dns = {make_addr(i) for i in range(5, 13)}
        return AddressViews(when=0.0, bitnodes=bitnodes, dns=dns, alive=bitnodes)

    def test_merges_sources(self):
        crawler = AddressCrawler(lambda addr: False)
        crawl_input = crawler.collect(self._views())
        assert crawl_input.stats.bitnodes_total == 10
        assert crawl_input.stats.dns_total == 8
        assert crawl_input.stats.common_total == 5
        assert crawl_input.stats.union_total == 13
        assert len(crawl_input.targets) == 13

    def test_blacklist_excluded(self):
        banned = {make_addr(0), make_addr(6)}
        crawler = AddressCrawler(lambda addr: addr in banned)
        crawl_input = crawler.collect(self._views())
        assert crawl_input.stats.excluded_bitnodes == 2
        assert crawl_input.stats.excluded_dns == 1
        assert crawl_input.stats.excluded_common == 1
        assert crawl_input.stats.provided == 11
        assert banned.isdisjoint(crawl_input.targets)

    def test_known_source_addrs(self):
        crawler = AddressCrawler(lambda addr: False)
        crawl_input = crawler.collect(self._views())
        assert len(crawl_input.known_source_addrs) == 13


class TestGetAddrCrawler:
    def _server(self, sim, rng, index, table_size=60):
        table = [make_addr(1000 + index * 1000 + i) for i in range(table_size)]
        server = AddrServer(sim, make_addr(index), rng, table=table)
        server.start()
        return server

    def test_harvests_tables(self, sim, rng):
        servers = [self._server(sim, rng, i + 1) for i in range(4)]
        crawler = GetAddrCrawler(sim, CRAWLER, GetAddrConfig(max_rounds=30))
        result = crawler.run_to_completion([s.addr for s in servers])
        assert len(result.connected_targets) == 4
        # The adaptive crawl should harvest most of each table.
        for server in servers:
            harvest = result.harvests[server.addr]
            assert harvest.connected
            coverage = len(harvest.addresses & set(server.table)) / len(server.table)
            assert coverage > 0.4
            assert harvest.sent_own_addr

    def test_dead_targets_counted_unconnected(self, sim, rng):
        server = self._server(sim, rng, 1)
        dead = make_addr(999)
        crawler = GetAddrCrawler(sim, CRAWLER)
        result = crawler.run_to_completion([server.addr, dead])
        assert result.harvests[dead].connected is False
        assert len(result.connected_targets) == 1

    def test_unreachable_filtering(self, sim, rng):
        server = self._server(sim, rng, 1)
        crawler = GetAddrCrawler(sim, CRAWLER)
        result = crawler.run_to_completion([server.addr])
        reachable_known = {server.addr}
        unreachable = result.unreachable_addresses(reachable_known)
        assert server.addr not in unreachable
        assert unreachable  # the table contents are not source-listed

    def test_paper_stop_rule_terminates_on_full_table(self, sim, rng):
        # A tiny table fits in one response: round 2 repeats → stop.
        server = self._server(sim, rng, 1, table_size=5)
        crawler = GetAddrCrawler(
            sim, CRAWLER, GetAddrConfig(stop_rule="paper", max_rounds=50)
        )
        result = crawler.run_to_completion([server.addr])
        harvest = result.harvests[server.addr]
        assert harvest.rounds <= 5

    def test_max_rounds_bounds_work(self, sim, rng):
        server = self._server(sim, rng, 1, table_size=500)
        crawler = GetAddrCrawler(
            sim, CRAWLER, GetAddrConfig(max_rounds=3, adaptive_threshold=0.0)
        )
        result = crawler.run_to_completion([server.addr])
        assert result.harvests[server.addr].rounds <= 3

    def test_concurrency_bounded(self, sim, rng):
        servers = [self._server(sim, rng, i + 1) for i in range(10)]
        crawler = GetAddrCrawler(sim, CRAWLER, GetAddrConfig(concurrency=2))
        result = crawler.run_to_completion([s.addr for s in servers])
        assert len(result.connected_targets) == 10

    def test_empty_target_list(self, sim):
        crawler = GetAddrCrawler(sim, CRAWLER)
        result = crawler.run_to_completion([])
        assert crawler.done
        assert result.harvests == {}

    def test_invalid_config(self):
        with pytest.raises(ScenarioError):
            GetAddrConfig(stop_rule="bogus").validate()
        with pytest.raises(ScenarioError):
            GetAddrConfig(concurrency=0).validate()


class TestVerProber:
    def test_classifies_behaviours(self, sim):
        fin = [make_addr(i) for i in range(1, 6)]
        rst = [make_addr(i) for i in range(6, 9)]
        silent = [make_addr(i) for i in range(9, 12)]
        for addr in fin:
            sim.network.set_probe_behavior(addr, ProbeBehavior.FIN)
        for addr in rst:
            sim.network.set_probe_behavior(addr, ProbeBehavior.RST)
        prober = VerProber(sim, CRAWLER, ProbeConfig(concurrency=4))
        result = prober.run_to_completion(fin + rst + silent)
        assert result.responsive == set(fin)
        assert result.rst == set(rst)
        assert result.silent == set(silent)
        assert result.probed == 11
        assert result.responsive_share == pytest.approx(5 / 11)

    def test_reachable_targets_flagged_bitcoin(self, sim, rng):
        server = AddrServer(sim, make_addr(1), rng, table=[])
        server.start()
        prober = VerProber(sim, CRAWLER)
        result = prober.run_to_completion([server.addr])
        assert result.bitcoin == {server.addr}

    def test_empty_targets(self, sim):
        prober = VerProber(sim, CRAWLER)
        result = prober.run_to_completion([])
        assert result.probed == 0
        assert result.responsive_share == 0.0

    def test_invalid_config(self):
        with pytest.raises(ScenarioError):
            ProbeConfig(concurrency=0).validate()
        with pytest.raises(ScenarioError):
            ProbeConfig(timeout=0).validate()
