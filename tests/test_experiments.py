"""Tests for the §IV experiment drivers (stability, success, relay, sync)."""

from __future__ import annotations

import pytest

from repro.core import (
    RelayExperimentConfig,
    SyncCampaignConfig,
    SyncMonitor,
    build_relay_scenario,
    run_connection_stability,
    run_connection_success,
    run_resync_experiment,
    run_sync_campaign,
)
from repro.netmodel import ProtocolConfig, ProtocolScenario


@pytest.fixture(scope="module")
def warm_scenario():
    scenario = ProtocolScenario(
        ProtocolConfig(n_reachable=40, seed=9, block_interval=300.0)
    )
    scenario.start(warmup=600.0)
    return scenario


class TestConnectionStability:
    def test_fig6_shape(self, warm_scenario):
        result = run_connection_stability(warm_scenario, duration=120.0)
        assert len(result.series) >= 100
        assert 0 <= result.min_connections
        assert result.max_connections <= 10  # 8 outbound + 2 feelers
        assert result.mean_connections <= 8.5

    def test_observer_counts_feelers(self, warm_scenario):
        # The polled metric is outbound_count_with_feelers; it must never
        # exceed max_outbound + the 2 concurrent feeler slots.
        result = run_connection_stability(warm_scenario, duration=60.0)
        assert result.max_connections <= 10


class TestConnectionSuccess:
    def test_fig7_shape(self, warm_scenario):
        result = run_connection_success(warm_scenario, runs=2, duration=120.0)
        assert len(result.runs) == 2
        for run in result.runs:
            assert run.attempts > 5
            assert 0 <= run.successes <= run.attempts
        # Polluted tables: the failure rate dominates (paper: 88.8%).
        assert result.overall_rate < 0.5

    def test_worst_run(self, warm_scenario):
        result = run_connection_success(warm_scenario, runs=2, duration=90.0)
        assert result.worst_run.success_rate <= result.overall_rate + 1e-9


class TestResync:
    def test_restart_eventually_relays(self):
        scenario = ProtocolScenario(
            ProtocolConfig(n_reachable=25, seed=10, block_interval=120.0)
        )
        scenario.start(warmup=900.0)
        result = run_resync_experiment(scenario, max_wait=3600.0)
        assert result.resync_seconds is not None
        assert result.resync_seconds > 0


class TestRelayExperiment:
    def test_builder_pins_clients(self):
        config = RelayExperimentConfig(
            n_reachable=12, n_clients=5, duration=60.0, warmup=60.0
        )
        scenario, target, clients = build_relay_scenario(config)
        assert len(clients) == 5
        assert target.config.max_inbound == 5
        scenario.start()
        target.start()
        for client in clients:
            client.start()
        scenario.sim.run_for(120.0)
        assert target.inbound_count == 5
        assert all(client.outbound_count == 1 for client in clients)

    def test_clients_generate_getaddr_load(self):
        config = RelayExperimentConfig(
            n_reachable=12, n_clients=3, client_getaddr_interval=5.0
        )
        scenario, target, clients = build_relay_scenario(config)
        scenario.start()
        target.start()
        for client in clients:
            client.start()
        scenario.sim.run_for(120.0)
        served = [
            peer.addr_messages_received
            for client in clients
            for peer in client.peers.values()
        ]
        assert sum(served) > 3  # repeated ADDR responses arrived


class TestSyncMonitor:
    def test_fully_synced_network_reads_high(self):
        scenario = ProtocolScenario(
            ProtocolConfig(n_reachable=20, seed=11, block_interval=600.0)
        )
        scenario.start(warmup=600.0)
        monitor = SyncMonitor(scenario, period=60.0, poll_spread=0.0)
        scenario.sim.run_for(600.0)
        values = monitor.sync_percents()
        assert values
        assert sum(values) / len(values) > 85.0

    def test_poll_spread_lowers_measured_sync(self):
        scenario = ProtocolScenario(
            ProtocolConfig(n_reachable=20, seed=11, block_interval=120.0)
        )
        scenario.start(warmup=600.0)
        instant = SyncMonitor(scenario, period=60.0, poll_spread=0.0)
        stale = SyncMonitor(scenario, period=60.0, poll_spread=300.0)
        scenario.sim.run_for(1800.0)
        mean_instant = sum(instant.sync_percents()) / len(instant.sync_percents())
        mean_stale = sum(stale.sync_percents()) / len(stale.sync_percents())
        assert mean_stale < mean_instant

    def test_departure_stats_requires_two_snapshots(self):
        scenario = ProtocolScenario(ProtocolConfig(n_reachable=10, seed=2, mining=False))
        monitor = SyncMonitor(scenario, period=1e9)
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            monitor.departure_stats()


class TestSyncCampaign:
    def test_small_campaign_runs(self):
        result = run_sync_campaign(
            SyncCampaignConfig(
                n_reachable=25,
                churn_per_10min=4.0,
                pre_mined_blocks=30,
                duration=1800.0,
                warmup=300.0,
                sample_period=120.0,
                seed=13,
            )
        )
        assert len(result.sync_samples) >= 10
        assert 0.0 < result.mean <= 100.0
        assert result.total_departures > 0
        density = result.density()
        assert density.count == len(result.sync_samples)
