"""Additional behavioural detail tests across the stack."""

from __future__ import annotations

from repro.bitcoin import Transaction
from repro.bitcoin.messages import Addr
from repro.netmodel import ProtocolConfig
from repro.netmodel import calibration as cal
from repro.simnet import TimestampedAddr
from repro.units import DAYS

from .conftest import build_small_network, make_addr, make_node


class TestAddrGossipDetails:
    def test_honest_getaddr_response_leads_with_self(self, sim):
        server = make_node(sim, 1)
        server.bootstrap([make_addr(i + 50) for i in range(30)])
        server.start()
        client = make_node(sim, 2)
        client.bootstrap([server.addr])
        client.start()
        sim.run_for(30.0)
        peer_on_server = next(iter(server.peers.values()))
        # Reconstruct what the server sends for a GETADDR.
        response = server._build_addr_response(  # noqa: SLF001
            server.addrman.get_addr(sim.now)
        )
        assert response[0].addr == server.addr

    def test_forward_fanout_bounded(self, sim):
        hub = make_node(sim, 0)
        hub.start()
        clients = []
        for index in range(1, 7):
            client = make_node(sim, index)
            client.bootstrap([hub.addr])
            client.start()
            clients.append(client)
        sim.run_for(60.0)
        origin = next(iter(hub.peers.values()))
        novel = make_addr(500)
        queued_before = {
            id(peer): len(peer.send_queue) for peer in hub.peers.values()
        }
        hub._handle_addr(  # noqa: SLF001
            origin, Addr(addresses=(TimestampedAddr(novel, sim.now),))
        )
        forwarded_to = sum(
            1
            for peer in hub.peers.values()
            if len(peer.send_queue) > queued_before[id(peer)]
        )
        assert 1 <= forwarded_to <= 2  # ADDR_FORWARD_FANOUT

    def test_large_addr_messages_not_forwarded(self, sim):
        hub = make_node(sim, 0)
        hub.start()
        client = make_node(sim, 1)
        client.bootstrap([hub.addr])
        client.start()
        sim.run_for(30.0)
        origin = next(iter(hub.peers.values()))
        records = tuple(
            TimestampedAddr(make_addr(600 + i), sim.now) for i in range(50)
        )
        queue_before = len(origin.send_queue)
        hub._handle_addr(origin, Addr(addresses=records))  # noqa: SLF001
        # Addresses learned, but no forwarding of a bulk (getaddr-style)
        # payload — only ≤10-record announcements propagate.
        assert len(origin.send_queue) == queue_before
        assert make_addr(600) in hub.addrman

    def test_gossiped_timestamps_stored(self, sim):
        node = make_node(sim, 1)
        node.start()
        other = make_node(sim, 2)
        other.bootstrap([node.addr])
        other.start()
        sim.run_for(30.0)
        peer = next(iter(node.peers.values()))
        stamped = TimestampedAddr(make_addr(700), 12.5)
        node._handle_addr(peer, Addr(addresses=(stamped,)))  # noqa: SLF001
        assert node.addrman.info(make_addr(700)).timestamp == 12.5


class TestFeelerSlotAccounting:
    def test_feelers_do_not_consume_outbound_slots(self, sim):
        nodes = build_small_network(sim, 20)
        sim.run_for(400.0)
        for node in nodes:
            # outbound_count counts standing connections only; with
            # feelers active the polled metric may read up to +2.
            assert node.outbound_count <= node.config.max_outbound
            assert (
                node.outbound_count_with_feelers
                <= node.config.max_outbound + 2
            )


class TestSubmitDedup:
    def test_submit_tx_twice_is_single_relay(self, sim):
        a = make_node(sim, 1)
        b = make_node(sim, 2)
        a.bootstrap([b.addr])
        a.start()
        b.start()
        sim.run_for(30.0)
        tx = Transaction(txid=42, size=250)
        a.submit_tx(tx)
        pending = sum(len(p.pending_tx_invs) for p in a.peers.values())
        a.submit_tx(tx)  # duplicate submission
        assert sum(len(p.pending_tx_invs) for p in a.peers.values()) == pending


class TestProtocolConfigRatios:
    def test_unreachable_counts_follow_paper_ratios(self):
        config = ProtocolConfig(n_reachable=100)
        expected_responsive = round(
            100 * cal.RESPONSIVE_PER_SNAPSHOT / cal.BITNODES_ADDRS_PER_SNAPSHOT
        )
        assert config.responsive_count == expected_responsive
        assert config.silent_count > config.responsive_count

    def test_overrides_win(self):
        config = ProtocolConfig(n_reachable=100, n_responsive=7, n_silent=9)
        assert config.responsive_count == 7
        assert config.silent_count == 9


class TestSnapshotSpacing:
    def test_snapshot_times_evenly_spaced_and_interior(self):
        from repro.netmodel import LongitudinalConfig, LongitudinalScenario

        scenario = LongitudinalScenario(
            LongitudinalConfig(scale=0.002, snapshots=10, seed=2)
        )
        times = scenario.snapshot_times
        gaps = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert len(gaps) == 1  # uniform spacing
        horizon = scenario.config.campaign_days * DAYS
        assert 0 < times[0] and times[-1] < horizon


class TestNetworkCounters:
    def test_probe_counter_increments(self, sim):
        before = sim.network.probes_sent
        sim.network.probe(make_addr(1), make_addr(2), lambda r: None, timeout=1.0)
        assert sim.network.probes_sent == before + 1

    def test_message_counter_tracks_deliveries(self, sim):
        a = make_node(sim, 1)
        b = make_node(sim, 2)
        a.bootstrap([b.addr])
        a.start()
        b.start()
        sim.run_for(30.0)
        assert sim.network.messages_delivered > 4  # handshake traffic

    def test_open_sockets_listing(self, sim):
        a = make_node(sim, 1)
        b = make_node(sim, 2)
        a.bootstrap([b.addr])
        a.start()
        b.start()
        sim.run_for(30.0)
        socks_a = sim.network.open_sockets(a.addr)
        socks_b = sim.network.open_sockets(b.addr)
        assert len(socks_a) == 1
        assert len(socks_b) == 1
        a.stop()
        sim.run_for(10.0)
        assert sim.network.open_sockets(a.addr) == []
