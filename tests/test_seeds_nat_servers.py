"""Tests for the address oracles, NAT model, addr servers, and flooders."""

from __future__ import annotations

import random

import pytest

from repro.bitcoin.messages import GetAddr, Version
from repro.netmodel.addr_server import AddrServer
from repro.netmodel.asmap import ASUniverse
from repro.netmodel.churn import PresenceTimeline
from repro.netmodel.malicious import (
    FloodVolumeModel,
    MaliciousAddrServer,
    plant_flooders,
)
from repro.netmodel.nat import NatModel
from repro.netmodel.population import Population, PopulationConfig
from repro.netmodel.seeds import AddressOracles, DnsSeeder, SeedViewConfig
from repro.simnet import ProbeBehavior
from repro.units import DAYS

from .conftest import make_addr


class TestDnsSeeder:
    def test_register_query(self, rng):
        seeder = DnsSeeder(rng)
        addrs = [make_addr(i) for i in range(20)]
        for addr in addrs:
            seeder.register(addr)
        got = seeder.query(5)
        assert len(got) == 5
        assert set(got) <= set(addrs)

    def test_register_idempotent(self, rng):
        seeder = DnsSeeder(rng)
        addr = make_addr(1)
        seeder.register(addr)
        seeder.register(addr)
        assert len(seeder) == 1

    def test_unregister(self, rng):
        seeder = DnsSeeder(rng)
        addr = make_addr(1)
        seeder.register(addr)
        seeder.unregister(addr)
        assert len(seeder) == 0
        assert seeder.query() == []


def _timeline_world(rng, count=400):
    universe = ASUniverse(rng)
    population = Population(
        rng,
        universe,
        PopulationConfig(scale=0.02, cumulative_reachable=count / 0.02),
    )
    timeline = PresenceTimeline(60 * DAYS)
    # First half alive the whole campaign; second half departed at day 10.
    half = len(population.reachable) // 2
    for record in population.reachable[:half]:
        timeline.set_intervals(record.addr, [(0.0, 60 * DAYS)])
    for record in population.reachable[half:]:
        timeline.set_intervals(record.addr, [(0.0, 10 * DAYS)])
    return population, timeline


class TestAddressOracles:
    def test_views_cover_alive_at_expected_rate(self, rng):
        population, timeline = _timeline_world(rng)
        oracles = AddressOracles(rng, population.reachable, timeline)
        views = oracles.snapshot(30 * DAYS)
        alive = len(views.alive)
        coverage = len(views.bitnodes & views.alive) / alive
        assert 0.68 <= coverage <= 0.88  # configured 0.78

    def test_membership_is_sticky(self, rng):
        population, timeline = _timeline_world(rng)
        oracles = AddressOracles(rng, population.reachable, timeline)
        first = oracles.snapshot(20 * DAYS)
        second = oracles.snapshot(30 * DAYS)
        # Alive nodes keep their Bitnodes membership between snapshots.
        assert (first.bitnodes & first.alive) == (second.bitnodes & second.alive)

    def test_departed_nodes_age_out(self, rng):
        population, timeline = _timeline_world(rng)
        oracles = AddressOracles(rng, population.reachable, timeline)
        shortly_after = oracles.snapshot(12 * DAYS)
        long_after = oracles.snapshot(40 * DAYS)
        departed = {
            record.addr
            for record in population.reachable
            if not timeline.alive_at(record.addr, 12 * DAYS)
            and timeline.ever_seen(record.addr)
        }
        assert len(shortly_after.bitnodes & departed) > 0
        assert len(long_after.bitnodes & departed) == 0

    def test_dns_mostly_subset_of_bitnodes(self, rng):
        population, timeline = _timeline_world(rng)
        oracles = AddressOracles(rng, population.reachable, timeline)
        views = oracles.snapshot(30 * DAYS)
        assert len(views.common) / len(views.dns) > 0.7

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SeedViewConfig(bitnodes_alive_coverage=1.5).validate()


class TestNatModel:
    def test_responsive_marked_fin(self, sim, rng):
        nat = NatModel(sim.network, rng)
        addrs = [make_addr(i) for i in range(5)]
        nat.mark_responsive(addrs)
        for addr in addrs:
            assert sim.network.probe_behavior(addr) is ProbeBehavior.FIN

    def test_silent_mix_of_rst_and_silent(self, sim, rng):
        nat = NatModel(sim.network, rng, rst_fraction=0.5)
        addrs = [make_addr(i) for i in range(200)]
        nat.mark_silent(addrs)
        behaviors = [sim.network.probe_behavior(addr) for addr in addrs]
        rst_share = behaviors.count(ProbeBehavior.RST) / len(behaviors)
        assert 0.35 < rst_share < 0.65

    def test_mark_offline(self, sim, rng):
        nat = NatModel(sim.network, rng)
        addr = make_addr(1)
        nat.mark_responsive([addr])
        nat.mark_offline(addr)
        assert sim.network.probe_behavior(addr) is ProbeBehavior.SILENT

    def test_invalid_fraction(self, sim, rng):
        with pytest.raises(ValueError):
            NatModel(sim.network, rng, rst_fraction=2.0)


class _Collector:
    def __init__(self):
        self.messages = []

    def on_message(self, socket, message):
        self.messages.append(message)

    def on_disconnect(self, socket):
        pass


def _getaddr_exchange(sim, server):
    collector = _Collector()
    out = []
    sim.network.connect(make_addr(900), server.addr, collector, out.append)
    sim.run_for(5.0)
    sock = out[0]
    sock.send(Version(make_addr(900), server.addr, 0))
    sim.run_for(5.0)
    sock.send(GetAddr())
    sim.run_for(5.0)
    addrs = [m for m in collector.messages if m.command == "addr"]
    return addrs[-1] if addrs else None


class TestAddrServer:
    def test_serves_sample_with_self_first(self, sim, rng):
        table = [make_addr(i + 10) for i in range(100)]
        server = AddrServer(sim, make_addr(1), rng, table=table)
        server.start()
        response = _getaddr_exchange(sim, server)
        assert response is not None
        assert response.addresses[0].addr == server.addr
        assert 0 < len(response.addresses) <= 1000
        sample = {record.addr for record in response.addresses[1:]}
        assert sample <= set(table)

    def test_response_respects_23_percent(self, sim, rng):
        table = [make_addr(i + 10) for i in range(100)]
        server = AddrServer(sim, make_addr(1), rng, table=table)
        server.start()
        response = _getaddr_exchange(sim, server)
        assert len(response.addresses) <= 1 + 23

    def test_stop_refuses_connections(self, sim, rng):
        server = AddrServer(sim, make_addr(1), rng)
        server.start()
        server.stop()
        out = []
        sim.network.connect(make_addr(2), server.addr, _Collector(), out.append)
        sim.run_for(10.0)
        assert out == [None]

    def test_inbound_cap(self, sim, rng):
        server = AddrServer(sim, make_addr(1), rng, max_inbound=1)
        server.start()
        results = []
        sim.network.connect(make_addr(2), server.addr, _Collector(), results.append)
        sim.network.connect(make_addr(3), server.addr, _Collector(), results.append)
        sim.run_for(10.0)
        assert sum(1 for sock in results if sock is not None) == 1


class TestMaliciousAddrServer:
    def _flooder(self, sim, rng, volume=2500):
        universe = ASUniverse(rng)
        population = Population(rng, universe, PopulationConfig(scale=0.002))
        return MaliciousAddrServer(
            sim, make_addr(1), rng, population=population, flood_volume=volume
        )

    def test_never_includes_self(self, sim, rng):
        flooder = self._flooder(sim, rng)
        flooder.start()
        response = _getaddr_exchange(sim, flooder)
        assert all(record.addr != flooder.addr for record in response.addresses)

    def test_serves_fresh_fakes_up_to_volume(self, sim, rng):
        flooder = self._flooder(sim, rng, volume=2500)
        flooder.start()
        seen = set()
        for _ in range(5):
            response = _getaddr_exchange(sim, flooder)
            seen |= {record.addr for record in response.addresses}
        assert len(seen) == 2500  # pool exhausted, then repeats

    def test_set_table_does_not_clear_pool(self, sim, rng):
        flooder = self._flooder(sim, rng, volume=100)
        flooder.start()
        _getaddr_exchange(sim, flooder)
        flooder.set_table([make_addr(50)])
        assert len(flooder.table) == 100


class TestFloodVolumeModel:
    def test_scale_applies(self, rng):
        model = FloodVolumeModel()
        full = [model.sample(random.Random(i)) for i in range(50)]
        scaled = [model.sample(random.Random(i), scale=0.1) for i in range(50)]
        for f, s in zip(full, scaled):
            # Same seed, scaled draw — modulo the absolute floor of 30.
            assert s == max(30, int(f * 0.1), int(model.floor * 0.1)) or abs(
                s - f * 0.1
            ) <= max(1, f * 0.02)

    def test_heavy_tail_exists(self):
        model = FloodVolumeModel()
        rng = random.Random(0)
        draws = [model.sample(rng) for _ in range(500)]
        # Log-normal pools: most modest, a skewed tail of big ones.
        assert max(draws) > 8 * model.median
        typical = sum(1 for v in draws if v < 3 * model.median)
        assert typical / len(draws) > 0.7

    def test_tiny_scale_stays_detectable(self):
        model = FloodVolumeModel()
        rng = random.Random(0)
        draws = [model.sample(rng, scale=0.001) for _ in range(100)]
        assert min(draws) >= 30


class TestPlantFlooders:
    def test_count_and_as_clustering(self, sim, rng):
        universe = ASUniverse(rng)
        population = Population(rng, universe, PopulationConfig(scale=0.002))
        flooders = plant_flooders(sim, rng, population, scale=1.0, count=73)
        assert len(flooders) == 73
        in_3320 = sum(
            1 for f in flooders if universe.asn_of(f.addr) == 3320
        )
        assert 0.4 < in_3320 / len(flooders) < 0.8  # paper: 59%
