"""Tests for the crawler's reconnect-and-repeat mode (Core workaround)."""

from __future__ import annotations

import pytest

from repro.bitcoin import NodeConfig
from repro.core.getaddr import GetAddrConfig, GetAddrCrawler
from repro.errors import ScenarioError

from .conftest import make_addr, make_node

CRAWLER = make_addr(60001)


def _core_like_server(sim, table_size=300):
    """A full BitcoinNode that ignores repeated GETADDR (Core default)."""
    server = make_node(sim, 1, NodeConfig(serve_repeated_getaddr=False))
    server.bootstrap([make_addr(i + 1000) for i in range(table_size)])
    server.start()
    return server


class TestReconnectRounds:
    def test_single_session_gets_one_sample(self, sim):
        server = _core_like_server(sim)
        crawler = GetAddrCrawler(
            sim, CRAWLER, GetAddrConfig(reconnect_rounds=0, peer_timeout=8.0)
        )
        result = crawler.run_to_completion([server.addr])
        harvest = result.harvests[server.addr]
        assert harvest.sessions == 1
        # One ADDR response ≈ 23% of a 300-entry table.
        assert 40 <= len(harvest.addresses) <= 90

    def test_reconnects_harvest_more(self, sim):
        server = _core_like_server(sim)
        crawler = GetAddrCrawler(
            sim, CRAWLER, GetAddrConfig(reconnect_rounds=5, peer_timeout=8.0)
        )
        result = crawler.run_to_completion([server.addr])
        harvest = result.harvests[server.addr]
        assert harvest.sessions == 6
        # Six independent 23% samples cover far more of the table.
        assert len(harvest.addresses) > 150

    def test_reconnect_bounded(self, sim):
        server = _core_like_server(sim)
        crawler = GetAddrCrawler(
            sim, CRAWLER, GetAddrConfig(reconnect_rounds=2, peer_timeout=8.0)
        )
        result = crawler.run_to_completion([server.addr])
        assert result.harvests[server.addr].sessions == 3

    def test_dead_targets_not_reconnected(self, sim):
        crawler = GetAddrCrawler(
            sim, CRAWLER, GetAddrConfig(reconnect_rounds=3)
        )
        dead = make_addr(999)
        result = crawler.run_to_completion([dead])
        assert result.harvests[dead].sessions == 0
        assert not result.harvests[dead].connected

    def test_negative_rounds_rejected(self):
        with pytest.raises(ScenarioError):
            GetAddrConfig(reconnect_rounds=-1).validate()

    def test_records_accumulate_across_sessions(self, sim):
        server = _core_like_server(sim)
        crawler = GetAddrCrawler(
            sim, CRAWLER, GetAddrConfig(reconnect_rounds=3, peer_timeout=8.0)
        )
        result = crawler.run_to_completion([server.addr])
        harvest = result.harvests[server.addr]
        # total_records counts repeats; unique set does not.
        assert harvest.total_records >= len(harvest.addresses)
        assert harvest.addr_messages >= 4  # one ADDR response per session
