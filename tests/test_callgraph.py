"""Tests for the interprocedural pass: call graph + ASYNC/HOT rules.

The engine-level fixtures write multi-file trees to a temp dir and run
the full :func:`repro.lint.lint_paths` pipeline, so they pin resolution
end-to-end: symbol tables, relative imports, self-type inference,
``functools.partial``, taint propagation, and the rules' reporting —
exactly the path CI exercises.  The graph-level tests poke
:func:`repro.lint.callgraph.build_call_graph` directly where the
property under test (cycle termination, hot origins) is easier to
assert on the graph than through findings.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.lint import LintConfig, lint_paths
from repro.lint.callgraph import build_call_graph, module_name_for


def lint_tree(tmp_path: Path, files: dict, **config):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint it all."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            textwrap.dedent(source).lstrip("\n"), encoding="utf-8"
        )
    cfg = LintConfig(root=str(tmp_path), **config)
    return lint_paths([str(tmp_path)], cfg, baseline=None)


def graph_for(files: dict, **config):
    """Build a call graph straight from in-memory sources."""
    modules = []
    for rel, source in files.items():
        text = textwrap.dedent(source).lstrip("\n")
        modules.append((rel, ast.parse(text), text.splitlines()))
    return build_call_graph(modules, LintConfig(**config))


def codes(result):
    return [finding.code for finding in result.findings]


class TestModuleNaming:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/serve/app.py") == (
            "repro.serve.app", False,
        )

    def test_package_init(self):
        assert module_name_for("src/repro/lint/__init__.py") == (
            "repro.lint", True,
        )


class TestTransitiveBlocking:
    def test_three_deep_chain_reported_at_async_frontier(self, tmp_path):
        # handler -> a -> b -> c -> time.sleep: the finding lands on the
        # call inside the async def, and the message names the chain.
        result = lint_tree(
            tmp_path,
            {
                "svc.py": """
                    import time

                    def c():
                        time.sleep(1)

                    def b():
                        c()

                    def a():
                        b()

                    async def handler():
                        a()
                    """,
            },
        )
        assert codes(result) == ["ASYNC001"]
        finding = result.findings[0]
        assert "handler" in finding.message
        for hop in ("a", "b", "c", "time.sleep"):
            assert hop in finding.message

    def test_executor_dispatch_cuts_the_taint(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "svc.py": """
                    import asyncio
                    import time

                    def work():
                        time.sleep(1)

                    async def handler():
                        loop = asyncio.get_running_loop()
                        await loop.run_in_executor(None, work)

                    async def handler2():
                        await asyncio.to_thread(work)
                    """,
            },
        )
        assert codes(result) == []

    def test_sync_only_chain_is_clean(self, tmp_path):
        # Blocking I/O with no async caller is ordinary code.
        result = lint_tree(
            tmp_path,
            {
                "io.py": """
                    def save(path, data):
                        with open(path, "w") as handle:
                            handle.write(data)
                    """,
            },
        )
        assert codes(result) == []

    def test_await_of_async_callee_reports_at_callee_not_caller(
        self, tmp_path
    ):
        # The async callee owns its blocking frontier; the awaiting
        # caller is not double-reported.
        result = lint_tree(
            tmp_path,
            {
                "svc.py": """
                    import time

                    async def inner():
                        time.sleep(1)

                    async def outer():
                        await inner()
                    """,
            },
        )
        assert codes(result) == ["ASYNC001"]
        assert "inner" in result.findings[0].message
        assert result.findings[0].line == 4


class TestMethodResolution:
    def test_self_attribute_type_from_constructor_call(self, tmp_path):
        # svc.Store is assigned in __init__ via a constructor call; the
        # handler's self.store.load() resolves through the inferred
        # attribute type, across modules.
        result = lint_tree(
            tmp_path,
            {
                "store.py": """
                    class Store:
                        def load(self, name):
                            with open(name) as handle:
                                return handle.read()
                    """,
                "svc.py": """
                    from store import Store

                    class Service:
                        def __init__(self, root):
                            self.store = Store(root)

                        async def handler(self, name):
                            return self.store.load(name)
                    """,
            },
        )
        assert codes(result) == ["ASYNC001"]
        assert "Store.load" in result.findings[0].message

    def test_annotated_param_infers_attribute_type(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "store.py": """
                    class Store:
                        def load(self, name):
                            with open(name) as handle:
                                return handle.read()
                    """,
                "svc.py": """
                    from store import Store

                    class Service:
                        def __init__(self, store: Store):
                            self.store = store

                        async def handler(self, name):
                            return self.store.load(name)
                    """,
            },
        )
        assert codes(result) == ["ASYNC001"]

    def test_path_division_keeps_path_type(self, tmp_path):
        # self.runs = self.root / "runs" stays Path-typed, so the
        # read_text below it is recognized as blocking.
        result = lint_tree(
            tmp_path,
            {
                "svc.py": """
                    from pathlib import Path

                    class Service:
                        def __init__(self, root):
                            self.root = Path(root)
                            self.runs = self.root / "runs"

                        async def handler(self):
                            return self.runs.read_text()
                    """,
            },
        )
        assert codes(result) == ["ASYNC001"]
        assert "read_text" in result.findings[0].message


class TestPartialAndAliases:
    def test_partial_invocation_carries_taint(self, tmp_path):
        # Calling a local bound to functools.partial(blocking_fn, ...)
        # is a real invocation — taint flows.
        result = lint_tree(
            tmp_path,
            {
                "svc.py": """
                    import functools
                    import time

                    def work(n):
                        time.sleep(n)

                    async def handler():
                        bound = functools.partial(work, 1)
                        bound()
                    """,
            },
        )
        assert codes(result) == ["ASYNC001"]

    def test_partial_construction_alone_is_not_a_call(self, tmp_path):
        # Building partial(blocking_fn) and handing it somewhere else
        # (e.g. into an executor wrapper) must NOT count as calling it —
        # that is precisely how serve dispatches store.gc.
        result = lint_tree(
            tmp_path,
            {
                "svc.py": """
                    import asyncio
                    import functools
                    import time

                    def work(n):
                        time.sleep(n)

                    async def handler():
                        loop = asyncio.get_running_loop()
                        await loop.run_in_executor(
                            None, functools.partial(work, 1)
                        )
                    """,
            },
        )
        assert codes(result) == []

    def test_aliased_import_resolves(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/io_mod.py": """
                    def fetch(name):
                        with open(name) as handle:
                            return handle.read()
                    """,
                "pkg/svc.py": """
                    from .io_mod import fetch as grab

                    async def handler(name):
                        return grab(name)
                    """,
            },
        )
        assert codes(result) == ["ASYNC001"]
        assert "fetch" in result.findings[0].message

    def test_aliased_module_import_resolves(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "svc.py": """
                    import time as clock

                    async def handler():
                        clock.sleep(1)
                    """,
            },
        )
        assert codes(result) == ["ASYNC001"]


class TestCycleTermination:
    def test_mutual_recursion_terminates_and_propagates(self):
        graph = graph_for(
            {
                "m.py": """
                    import time

                    def ping(n):
                        if n:
                            pong(n - 1)
                        time.sleep(1)

                    def pong(n):
                        ping(n)

                    def clean_ping(n):
                        if n:
                            clean_pong(n - 1)

                    def clean_pong(n):
                        clean_ping(n)
                    """,
            }
        )
        assert "m.ping" in graph.may_block
        assert "m.pong" in graph.may_block
        assert "m.clean_ping" not in graph.may_block
        assert "m.clean_pong" not in graph.may_block
        # chain() on a cyclic graph must terminate too.
        assert graph.chain("m.pong")

    def test_self_recursion_terminates(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "m.py": """
                    import time

                    def spin(n):
                        if n:
                            spin(n - 1)
                        time.sleep(1)

                    async def handler():
                        spin(3)
                    """,
            },
        )
        assert codes(result) == ["ASYNC001"]


class TestAsyncLifetimes:
    def test_unawaited_coroutine_flagged(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "svc.py": """
                    async def job():
                        return 1

                    async def handler():
                        job()

                    async def ok_handler():
                        await job()
                    """,
            },
        )
        assert codes(result) == ["ASYNC002"]
        assert result.findings[0].line == 5

    def test_cross_module_unawaited_coroutine(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "jobs.py": """
                    async def drain():
                        return 1
                    """,
                "svc.py": """
                    import jobs

                    async def shutdown():
                        jobs.drain()
                    """,
            },
        )
        assert codes(result) == ["ASYNC002"]

    def test_dropped_create_task_flagged_retained_ok(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "svc.py": """
                    import asyncio

                    async def poll():
                        return 1

                    async def bad_start():
                        asyncio.create_task(poll())

                    async def good_start(tasks):
                        task = asyncio.create_task(poll())
                        tasks.add(task)
                    """,
            },
        )
        assert codes(result) == ["ASYNC003"]
        assert result.findings[0].line == 7


class TestCrossThreadMutation:
    def test_thread_callback_calling_loop_owned_flagged(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "svc.py": """
                    import asyncio

                    class Job:
                        # repro-lint: loop-owned
                        def post(self, kind):
                            pass

                    def forward(job: Job, event):
                        job.post(event)

                    def forward_safe(loop, job: Job, event):
                        loop.call_soon_threadsafe(job.post, event)

                    class Manager:
                        def run(self, job: Job, loop):
                            loop.run_in_executor(None, forward, job)
                    """,
            },
        )
        # `forward` enters thread context via run_in_executor and calls
        # the loop-owned mutator directly; `forward_safe` bridges
        # through call_soon_threadsafe and stays clean.
        assert codes(result) == ["ASYNC004"]
        finding = result.findings[0]
        assert "forward" in finding.message
        assert "Job.post" in finding.message

    def test_thread_kwarg_entry_point(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "svc.py": """
                    import threading

                    class Job:
                        # repro-lint: loop-owned
                        def post(self, kind):
                            pass

                    def worker(job: Job):
                        job.post("tick")

                    def start(job):
                        thread = threading.Thread(target=worker)
                        thread.start()
                    """,
            },
        )
        assert codes(result) == ["ASYNC004"]


class TestHotPaths:
    def test_marker_flags_allocations(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "hot.py": """
                    # repro-lint: hot
                    def dispatch(items):
                        labels = [str(item) for item in items]
                        return labels
                    """,
            },
        )
        assert codes(result) == ["HOT001"]
        assert "list comprehension" in result.findings[0].message

    def test_config_seed_propagates_to_callees(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "hot.py": """
                    def helper(x):
                        return {"x": x}

                    def entry(x):
                        return helper(x)
                    """,
            },
            hot_paths=("hot.entry",),
        )
        assert codes(result) == ["HOT001"]
        finding = result.findings[0]
        assert "helper" in finding.message
        assert "called from" in finding.message

    def test_tuples_and_raise_paths_exempt(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "hot.py": """
                    # repro-lint: hot
                    def send(when, seq, payload):
                        if payload is None:
                            raise ValueError(f"empty payload at {when}")
                        return (when, seq, payload)
                    """,
            },
        )
        assert codes(result) == []

    def test_inline_suppression_honored(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "hot.py": """
                    # repro-lint: hot
                    def dispatch(items):
                        return [i for i in items]  # repro-lint: disable=HOT001 (amortized)
                    """,
            },
        )
        assert codes(result) == []

    def test_hot_origin_recorded(self):
        graph = graph_for(
            {
                "hot.py": """
                    def helper(x):
                        return x

                    # repro-lint: hot
                    def entry(x):
                        return helper(x)
                    """,
            }
        )
        assert graph.hot["hot.entry"] == "marked '# repro-lint: hot'"
        assert graph.hot["hot.helper"] == "called from entry"
