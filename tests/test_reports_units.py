"""Tests for report rendering, units helpers, and the error hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro.core.reports import comparison_table, format_table, series_preview
from repro.errors import (
    AnalysisError,
    ChainError,
    ClockError,
    ConnectionClosedError,
    HandshakeError,
    ProtocolError,
    ReproError,
    ScenarioError,
    SimulationError,
    TransportError,
)
from repro.units import DAYS, HOURS, MINUTES, format_duration, format_size


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        text = format_table(("name", "count"), [("alpha", 10), ("beta", 2000)])
        lines = text.splitlines()
        assert "name" in lines[0] and "count" in lines[0]
        assert "alpha" in text
        assert "2,000" in text

    def test_title(self):
        text = format_table(("a",), [(1,)], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_float_formatting(self):
        text = format_table(("v",), [(0.1234,), (12.345,), (1234.5,)])
        assert "0.123" in text
        assert "12.3" in text
        assert "1,234" in text or "1,235" in text

    def test_alignment_consistent(self):
        text = format_table(("col",), [("x",), ("longer",)])
        widths = {len(line) for line in text.splitlines()}
        assert len(widths) == 1


class TestComparisonTable:
    def test_ratio_column(self):
        text = comparison_table([("sync", 72.0, 36.0)])
        assert "0.5" in text

    def test_non_numeric_cells(self):
        text = comparison_table([("label", "n/a", 5)])
        assert "-" in text

    def test_zero_paper_value(self):
        text = comparison_table([("metric", 0, 5)])
        assert "-" in text


class TestSeriesPreview:
    def test_empty(self):
        assert series_preview([]) == "(empty)"

    def test_length_bounded(self):
        preview = series_preview(list(range(1000)), width=40)
        assert len(preview) <= 40

    def test_constant_series(self):
        preview = series_preview([5.0, 5.0, 5.0])
        assert len(preview) == 3


class TestUnits:
    def test_constants(self):
        assert MINUTES == 60
        assert HOURS == 3600
        assert DAYS == 86400

    def test_format_duration_paper_value(self):
        # The §IV-D resync measurement: 11 minutes 14 seconds.
        assert format_duration(674) == "11m 14s"

    def test_format_duration_bands(self):
        assert format_duration(17) == "17s"
        assert format_duration(3600) == "1h"
        assert format_duration(90000) == "1d 1h"

    def test_format_duration_negative(self):
        with pytest.raises(ValueError):
            format_duration(-1)

    def test_format_size(self):
        assert format_size(500) == "500 B"
        assert format_size(2048) == "2.0 KiB"
        assert format_size(3 * 1024 * 1024) == "3.0 MiB"

    def test_format_size_negative(self):
        with pytest.raises(ValueError):
            format_size(-1)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            AnalysisError,
            ChainError,
            ClockError,
            ConnectionClosedError,
            HandshakeError,
            ProtocolError,
            ScenarioError,
            SimulationError,
            TransportError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_clock_error_is_simulation_error(self):
        assert issubclass(ClockError, SimulationError)

    def test_connection_closed_is_transport_error(self):
        assert issubclass(ConnectionClosedError, TransportError)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        assert repro.simnet.Simulator
        assert repro.bitcoin.BitcoinNode
        assert repro.netmodel.ProtocolScenario
        assert repro.core.CampaignRunner
        assert repro.analysis.summarize

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
        for name in repro.core.__all__:
            assert getattr(repro.core, name) is not None
        for name in repro.netmodel.__all__:
            assert getattr(repro.netmodel, name) is not None
        for name in repro.bitcoin.__all__:
            assert getattr(repro.bitcoin, name) is not None
        for name in repro.simnet.__all__:
            assert getattr(repro.simnet, name) is not None
