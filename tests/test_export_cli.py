"""Tests for CSV export and the command-line interface."""

from __future__ import annotations

import csv
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.core import export
from repro.core.churn_matrix import ChurnStats
from repro.core.malicious_detect import DetectionReport, MaliciousFinding
from repro.core.relay_experiments import RelayExperimentResult
from repro.core.routing import hosting_report
from repro.core.sync_experiments import SyncCampaignConfig, SyncCampaignResult
from repro.analysis.kde import kde

from .conftest import make_addr


def read_csv(path: Path):
    with path.open() as handle:
        return list(csv.reader(handle))


class TestExport:
    def test_sync_samples(self, tmp_path):
        result = SyncCampaignResult(
            sync_samples=[70.0, 80.0],
            sync_departures_per_10min=4.0,
            total_departures=10,
            config=SyncCampaignConfig(),
        )
        path = export.export_sync_samples(result, tmp_path / "sync.csv", "2019")
        rows = read_csv(path)
        assert rows[0] == ["label", "sample_index", "sync_percent"]
        assert rows[1] == ["2019", "0", "70.0"]
        assert len(rows) == 3

    def test_density(self, tmp_path):
        density = kde([50.0, 60.0, 70.0], grid_points=16)
        path = export.export_density(density, tmp_path / "kde.csv")
        rows = read_csv(path)
        assert rows[0] == ["x", "density"]
        assert len(rows) == 17

    def test_churn_and_lifetimes(self, tmp_path):
        stats = ChurnStats(
            unique_nodes=3,
            always_on=1,
            mean_alive_per_snapshot=2.0,
            arrivals=[1, 0],
            departures=[0, 1],
            departure_rate=0.25,
            lifetimes=[100.0, 200.0],
            mean_lifetime=150.0,
            rejoining_nodes=0,
        )
        churn_path = export.export_churn(stats, tmp_path / "churn.csv")
        lifetimes_path = export.export_lifetimes(stats, tmp_path / "life.csv")
        assert read_csv(churn_path)[1] == ["0", "1", "0"]
        assert read_csv(lifetimes_path)[2] == ["1", "200.0"]

    def test_detection(self, tmp_path):
        report = DetectionReport(
            findings=[
                MaliciousFinding(
                    peer=make_addr(1),
                    unreachable_sent=5000,
                    unique_sent=1200,
                    addr_messages=5,
                    asn=3320,
                )
            ],
            min_addresses=1000,
        )
        path = export.export_detection(report, tmp_path / "flooders.csv")
        rows = read_csv(path)
        assert rows[1][1:] == ["5000", "1200", "5", "3320"]

    def test_hosting(self, tmp_path):
        report = hosting_report(
            "reachable",
            [make_addr(i) for i in range(10)],
            lambda addr: 10 if addr.group16 % 2 else 20,
        )
        path = export.export_hosting(report, tmp_path / "hosting.csv")
        rows = read_csv(path)
        assert rows[0] == ["rank", "asn", "nodes", "percent"]
        assert len(rows) == 3  # two ASes

    def test_relay_times(self, tmp_path):
        result = RelayExperimentResult(
            block_relay_times=[1.5],
            tx_relay_times=[0.2, 0.4],
            target_addr=make_addr(1),
            inbound_at_end=17,
            outbound_at_end=8,
        )
        path = export.export_relay_times(result, tmp_path / "relay.csv")
        rows = read_csv(path)
        assert rows[1] == ["block", "0", "1.5"]
        assert rows[3] == ["tx", "1", "0.4"]

    def test_creates_parent_directories(self, tmp_path):
        density = kde([1.0, 2.0], grid_points=4)
        path = export.export_density(density, tmp_path / "a" / "b" / "kde.csv")
        assert path.exists()


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        for command in ("campaign", "sync", "relay", "conn"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.slow
    def test_campaign_command_runs(self, tmp_path, capsys):
        code = main(
            [
                "campaign",
                "--scale", "0.002",
                "--snapshots", "2",
                "--export", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Campaign" in out
        assert (tmp_path / "campaign_series.csv").exists()
        assert (tmp_path / "hosting_reachable.csv").exists()

    @pytest.mark.slow
    def test_conn_command_runs(self, capsys):
        code = main(["conn", "--nodes", "25", "--runs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "connection success rate" in out
