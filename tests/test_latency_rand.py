"""Tests for the latency model and the random-stream utilities."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.simnet.addresses import NetAddr
from repro.simnet.latency import LatencyConfig, LatencyModel
from repro.simnet.rand import (
    derive_seed,
    weighted_sample_without_replacement,
    zipf_weights,
)

from .conftest import make_addr


class TestLatencyModel:
    def setup_method(self):
        self.model = LatencyModel(seed=1, rng=random.Random(2))

    def test_symmetric_base(self):
        a, b = make_addr(1), make_addr(2)
        assert self.model.base_latency(a, b) == self.model.base_latency(b, a)

    def test_deterministic_base(self):
        a, b = make_addr(1), make_addr(2)
        other = LatencyModel(seed=1, rng=random.Random(99))
        assert self.model.base_latency(a, b) == other.base_latency(a, b)

    def test_within_bounds(self):
        config = LatencyConfig()
        for i in range(2, 50):
            value = self.model.base_latency(make_addr(1), make_addr(i))
            assert config.min_latency <= value <= config.max_latency

    def test_local_latency_same_group(self):
        a = NetAddr(ip=(7 << 16) | 1)
        b = NetAddr(ip=(7 << 16) | 2)
        assert self.model.base_latency(a, b) == LatencyConfig().local_latency

    def test_jitter_stays_close_to_base(self):
        a, b = make_addr(1), make_addr(2)
        base = self.model.base_latency(a, b)
        for _ in range(100):
            sample = self.model.sample(a, b)
            assert base * 0.89 <= sample <= base * 1.11

    def test_zero_jitter_exact(self):
        model = LatencyModel(LatencyConfig(jitter=0.0), seed=1, rng=random.Random(1))
        a, b = make_addr(1), make_addr(2)
        assert model.sample(a, b) == model.base_latency(a, b)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LatencyConfig(min_latency=0.2, max_latency=0.1).validate()
        with pytest.raises(ValueError):
            LatencyConfig(jitter=1.5).validate()
        with pytest.raises(ValueError):
            LatencyConfig(local_latency=0.0).validate()


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_master_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_not_concatenation(self):
        # ("ab",) and ("a", "b") must differ.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_64_bit_range(self):
        value = derive_seed(123, "stream")
        assert 0 <= value < 2**64


class TestWeightedSample:
    def test_respects_k(self, rng):
        got = weighted_sample_without_replacement(rng, list(range(10)), [1.0] * 10, 3)
        assert len(got) == 3
        assert len(set(got)) == 3

    def test_zero_weight_never_sampled(self, rng):
        population = ["keep", "drop"]
        for _ in range(50):
            got = weighted_sample_without_replacement(rng, population, [1.0, 0.0], 2)
            assert "drop" not in got

    def test_k_larger_than_population(self, rng):
        got = weighted_sample_without_replacement(rng, [1, 2], [1.0, 1.0], 10)
        assert sorted(got) == [1, 2]

    def test_heavy_weight_dominates(self, rng):
        wins = 0
        for _ in range(200):
            got = weighted_sample_without_replacement(
                rng, ["heavy", "light"], [100.0, 1.0], 1
            )
            wins += got[0] == "heavy"
        assert wins > 150

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            weighted_sample_without_replacement(rng, [1], [1.0, 2.0], 1)

    def test_negative_weight(self, rng):
        with pytest.raises(ValueError):
            weighted_sample_without_replacement(rng, [1], [-1.0], 1)


class TestZipfWeights:
    def test_monotone_decreasing(self):
        weights = zipf_weights(100, 1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_exponent_zero_uniform(self):
        assert zipf_weights(5, 0.0) == [1.0] * 5

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)

    @given(st.integers(min_value=1, max_value=200), st.floats(min_value=0, max_value=3))
    def test_always_positive(self, n, s):
        assert all(w > 0 for w in zipf_weights(n, s))
