"""End-to-end integration tests crossing every layer."""

from __future__ import annotations

import pytest

from repro.bitcoin import NodeConfig
from repro.core import (
    CampaignRunner,
    GetAddrConfig,
    GetAddrCrawler,
    VerProber,
    composition,
    detect_flooders,
)
from repro.core.pipeline import CRAWLER_ADDR
from repro.netmodel import (
    LongitudinalConfig,
    LongitudinalScenario,
    ProtocolConfig,
    ProtocolScenario,
)


@pytest.mark.slow
class TestCrawlAgainstFullNodes:
    """The Algorithm-1 crawler must work against real BitcoinNodes too,
    not just the lightweight AddrServers used in crawl campaigns."""

    def test_crawl_live_protocol_network(self):
        scenario = ProtocolScenario(
            ProtocolConfig(
                n_reachable=20,
                seed=31,
                mining=False,
                node_config=NodeConfig(serve_repeated_getaddr=True),
            )
        )
        scenario.start(warmup=600.0)
        crawler = GetAddrCrawler(
            scenario.sim, CRAWLER_ADDR, GetAddrConfig(max_rounds=10)
        )
        targets = [node.addr for node in scenario.nodes]
        result = crawler.run_to_completion(targets)
        assert len(result.connected_targets) >= 18
        reachable_known = set(targets)
        comp = composition(result, reachable_known)
        # Live tables carry the seeded 15/85-ish pollution.
        assert comp.unreachable_share > 0.5
        # Honest nodes advertise themselves.
        own_advertisers = sum(
            1 for h in result.harvests.values() if h.sent_own_addr
        )
        assert own_advertisers >= 15

    def test_prober_agrees_with_ground_truth(self):
        scenario = ProtocolScenario(
            ProtocolConfig(n_reachable=15, seed=32, mining=False)
        )
        scenario.start(warmup=300.0)
        responsive_truth = {
            record.addr for record in scenario.population.responsive
        }
        silent_truth = {record.addr for record in scenario.population.silent}
        sample = list(responsive_truth)[:40] + list(silent_truth)[:40]
        prober = VerProber(scenario.sim, CRAWLER_ADDR)
        result = prober.run_to_completion(sample)
        assert result.responsive == responsive_truth & set(sample)
        assert not (result.responsive & silent_truth)


@pytest.mark.slow
class TestDetectorAgainstLiveFlooder:
    def test_flooder_detected_in_live_crawl(self):
        from repro.netmodel.malicious import MaliciousBitcoinNode

        scenario = ProtocolScenario(
            ProtocolConfig(
                n_reachable=15,
                seed=33,
                mining=False,
                node_config=NodeConfig(serve_repeated_getaddr=True),
            )
        )
        flooder = MaliciousBitcoinNode(
            scenario.sim,
            scenario.universe.allocate_address(3320),
            population=scenario.population,
            flood_volume=3000,
        )
        scenario.nodes.append(flooder)
        scenario.start(warmup=600.0)
        flooder.start()
        scenario.sim.run_for(120.0)
        targets = [node.addr for node in scenario.nodes]
        crawler = GetAddrCrawler(
            scenario.sim, CRAWLER_ADDR, GetAddrConfig(max_rounds=20)
        )
        result = crawler.run_to_completion(targets)
        reachable_known = set(targets) - {flooder.addr}
        report = detect_flooders(
            result, reachable_known, min_addresses=500,
            asn_of=scenario.universe.asn_of,
        )
        flagged = {finding.peer for finding in report.findings}
        assert flooder.addr in flagged
        honest = set(targets) - {flooder.addr}
        assert not (flagged & honest)
        finding = next(f for f in report.findings if f.peer == flooder.addr)
        assert finding.asn == 3320


@pytest.mark.slow
class TestDeterministicReplays:
    def test_campaign_is_reproducible(self):
        def run():
            scenario = LongitudinalScenario(
                LongitudinalConfig(scale=0.002, snapshots=3, seed=55)
            )
            result = CampaignRunner(scenario).run()
            series = result.fig4_series()
            return (
                series["cumulative"],
                [len(s.connected) for s in result.snapshots],
            )

        assert run() == run()

    def test_protocol_scenario_is_reproducible(self):
        def run():
            scenario = ProtocolScenario(
                ProtocolConfig(n_reachable=12, seed=77, block_interval=120.0)
            )
            scenario.start(warmup=900.0)
            return (
                scenario.best_height,
                sorted(node.chain.height for node in scenario.nodes),
                scenario.sim.scheduler.fired,
            )

        assert run() == run()
