"""Digest equivalence of the light-cloud fast path.

The fast path (``REPRO_FAST_PATH``, default on) changes *where* hot
events live — handler passes and light-endpoint answers ride the
scheduler's no-cancel lane, payloads are interned and shared — but
never *when* anything fires or which RNG draw serves it.  These tests
pin that: a batched run and an unbatched run of the same seed must
produce bit-identical figures for

* a live protocol scenario (chain heights, connection counts, sync),
* a sync campaign (the Fig. 1 pipeline end to end),
* a mixed-tier world snapshotted mid-batch (lane heap non-empty) and
  restored.

They complement ``tests/test_engine_fastpath.py`` (scheduler-level lane
ordering) by running the equivalence at scenario level, through every
layer the fast path touches.
"""

from __future__ import annotations

import pytest

from repro.core.sync_experiments import SyncCampaignConfig, run_sync_campaign
from repro.netmodel.scenario import ProtocolConfig, ProtocolScenario
from repro.simnet.simulator import Simulator, resolve_fast_path


@pytest.fixture(params=["1", "0"], ids=["fast-on", "fast-off"])
def fast_path_env(request, monkeypatch):
    monkeypatch.setenv("REPRO_FAST_PATH", request.param)
    return request.param == "1"


def test_env_toggle_resolves(fast_path_env):
    assert resolve_fast_path(None) is fast_path_env


def _protocol_figures():
    scenario = ProtocolScenario(
        ProtocolConfig(
            seed=23,
            n_reachable=10,
            fidelity="hybrid",
            churn_per_10min=2.0,
            pre_mined_blocks=5,
            tx_rate=0.05,
        )
    )
    scenario.start(warmup=120.0)
    events = int(scenario.sim.run_for(600.0))
    return (
        events,
        scenario.sim.now,
        tuple(node.chain.height for node in scenario.nodes),
        tuple(
            (node.addr, node.outbound_count)
            for node in scenario.running_nodes()
        ),
        scenario.sync_fraction(),
    )


def _with_fast_path(monkeypatch, value: str, fn):
    monkeypatch.setenv("REPRO_FAST_PATH", value)
    return fn()


def test_protocol_scenario_batched_equals_unbatched(monkeypatch):
    fast = _with_fast_path(monkeypatch, "1", _protocol_figures)
    slow = _with_fast_path(monkeypatch, "0", _protocol_figures)
    assert fast == slow


def test_sync_campaign_batched_equals_unbatched(monkeypatch):
    config = SyncCampaignConfig(
        n_reachable=12,
        fidelity="hybrid",
        churn_per_10min=4.0,
        pre_mined_blocks=20,
        warmup=200.0,
        duration=1000.0,
        seed=33,
    )
    fast = _with_fast_path(monkeypatch, "1", lambda: run_sync_campaign(config))
    slow = _with_fast_path(monkeypatch, "0", lambda: run_sync_campaign(config))
    assert fast.sync_samples == slow.sync_samples
    assert fast.total_departures == slow.total_departures
    assert fast.sync_departures_per_10min == slow.sync_departures_per_10min


def test_snapshot_restore_mid_batch(monkeypatch):
    """Snapshot with lane entries pending; restore must replay exactly."""
    monkeypatch.setenv("REPRO_FAST_PATH", "1")
    scenario = ProtocolScenario(
        ProtocolConfig(
            seed=17,
            n_reachable=8,
            fidelity="hybrid",
            churn_per_10min=2.0,
            pre_mined_blocks=3,
        )
    )
    scenario.start(warmup=30.0)
    # Step in small increments until the snapshot would land mid-batch:
    # lane entries (handler passes / light answers) waiting to fire.
    sim = scenario.sim
    for _ in range(2000):
        if sim.scheduler._lane_heap:  # noqa: SLF001 - white-box probe
            break
        sim.run_for(0.05)
    assert sim.scheduler._lane_heap, "never caught the lane non-empty"  # noqa: SLF001
    blob = sim.snapshot()
    restored = Simulator.restore(blob)
    assert restored.scheduler._lane_heap  # noqa: SLF001 - survived the trip
    a = int(sim.run_for(300.0))
    b = int(restored.run_for(300.0))
    assert a == b
    assert sim.now == restored.now


def test_fast_path_flag_reaches_handler_loops(monkeypatch):
    """The toggle must actually select the lane (guards silent decay)."""
    monkeypatch.setenv("REPRO_FAST_PATH", "1")
    fast = ProtocolScenario(ProtocolConfig(seed=3, n_reachable=4, mining=False))
    loop = fast.nodes[0].handlers
    assert loop._schedule_pass == fast.sim.scheduler.lane_schedule  # noqa: SLF001
    monkeypatch.setenv("REPRO_FAST_PATH", "0")
    slow = ProtocolScenario(ProtocolConfig(seed=3, n_reachable=4, mining=False))
    loop = slow.nodes[0].handlers
    assert loop._schedule_pass == loop._schedule_pass_fallback  # noqa: SLF001
