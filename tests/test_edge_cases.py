"""Edge-case and failure-injection tests across layers."""

from __future__ import annotations

import pytest

from repro.bitcoin import NodeConfig, unreachable_config
from repro.bitcoin.messages import Verack, Version
from repro.netmodel import ProtocolConfig, ProtocolScenario
from repro.netmodel.churn import ChurnProcess
from repro.errors import ScenarioError

from .conftest import build_small_network, make_addr, make_node


class TestHandshakeEdgeCases:
    def test_verack_before_version_still_establishes(self, sim):
        """Defensive: establishment must be order-independent."""
        node = make_node(sim, 1)
        node.start()
        other = make_node(sim, 2)
        other.bootstrap([node.addr])
        other.start()
        sim.run_for(2.0)  # connection exists, handshake in flight
        peer = next(iter(other.peers.values()), None)
        if peer is None:
            sim.run_for(10.0)
            peer = next(iter(other.peers.values()))
        # Simulate the reordered arrival directly.
        fresh = make_node(sim, 3)
        fresh.start()
        fresh_out = make_node(sim, 4)
        fresh_out.bootstrap([fresh.addr])
        fresh_out.start()
        sim.run_for(1.0)
        target_peer = next(iter(fresh_out.peers.values()), None)
        if target_peer is not None and not target_peer.established:
            fresh_out._handle_verack(target_peer, Verack())  # noqa: SLF001
            fresh_out._handle_version(  # noqa: SLF001
                target_peer,
                Version(sender=fresh.addr, receiver=fresh_out.addr, start_height=0),
            )
            assert target_peer.established

    def test_node_restart_clears_connection_state(self, sim):
        nodes = build_small_network(sim, 6)
        sim.run_for(120.0)
        victim = nodes[0]
        assert victim.peers
        victim.restart()
        assert victim.running
        sim.run_for(120.0)
        assert victim.outbound_count > 0  # reconnected

    def test_double_start_is_noop(self, sim):
        node = make_node(sim, 1)
        node.start()
        node.start()
        assert node.running
        node.stop()
        node.stop()
        assert not node.running

    def test_stop_before_start(self, sim):
        node = make_node(sim, 1)
        node.stop()  # must not raise
        assert not node.running


class TestConnectionEdgeCases:
    def test_node_never_dials_itself(self, sim):
        node = make_node(sim, 1, NodeConfig(track_connection_attempts=True))
        node.addrman.add(node.addr, now=0.0)
        node.start()
        sim.run_for(60.0)
        assert all(a.target != node.addr for a in node.attempt_log)

    def test_no_duplicate_connection_to_same_peer(self, sim):
        a = make_node(sim, 1)
        b = make_node(sim, 2)
        a.bootstrap([b.addr])
        # Pathological addrman: only b, repeatedly selectable.
        a.start()
        b.start()
        sim.run_for(120.0)
        connections_to_b = [
            p for p in a.peers.values() if p.remote_addr == b.addr
        ]
        assert len(connections_to_b) == 1

    def test_unreachable_node_relays_nothing_inbound(self, sim):
        hidden = make_node(sim, 1, unreachable_config())
        target = make_node(sim, 2)
        target.start()
        hidden.bootstrap([target.addr])
        hidden.start()
        sim.run_for(60.0)
        # hidden connected out to target; target cannot dial hidden back.
        assert hidden.outbound_count == 1
        out = []
        sim.network.connect(
            make_addr(9), hidden.addr, object(), out.append, timeout=2.0
        )
        sim.run_for(5.0)
        assert out == [None]

    def test_connection_lifetime_drops_and_refills(self, sim):
        # Enough hubs that some are never inbound-connected to the flaky
        # node (one connection per pair), leaving dialable candidates.
        hub_nodes = build_small_network(sim, 25)
        sim.run_for(120.0)
        flaky = make_node(
            sim,
            99,
            NodeConfig(connection_lifetime_mean=20.0),
        )
        flaky.bootstrap([n.addr for n in hub_nodes])
        flaky.start()
        sim.run_for(60.0)
        first_peers = {p.remote_addr for p in flaky.peers.values()}
        sim.run_for(300.0)
        # Drops happened (lifetimes ~20 s) but slots keep refilling.
        assert flaky.outbound_count >= 4
        later_peers = {p.remote_addr for p in flaky.peers.values()}
        assert first_peers != later_peers or len(first_peers) < 8


class TestChurnProcessEdgeCases:
    def test_protected_nodes_never_churned(self, sim):
        nodes = build_small_network(sim, 8)
        protected = nodes[0]
        churn = ChurnProcess(
            sim,
            lambda: nodes,
            start_replacement=lambda: None,
            departures_per_10min=600.0,  # one per second
            protect=lambda node: node is protected,
        )
        churn.start()
        sim.run_for(10.0)
        churn.stop()
        assert protected.running
        assert any(not node.running for node in nodes[1:])

    def test_invalid_rate(self, sim):
        with pytest.raises(ScenarioError):
            ChurnProcess(sim, lambda: [], lambda: None, departures_per_10min=0)

    def test_stop_halts_departures(self, sim):
        nodes = build_small_network(sim, 6)
        churn = ChurnProcess(
            sim, lambda: nodes, lambda: None, departures_per_10min=600.0
        )
        churn.start()
        sim.run_for(5.0)
        churn.stop()
        departed = len(churn.departures)
        sim.run_for(60.0)
        assert len(churn.departures) == departed


class TestScenarioEdgeCases:
    def test_longitudinal_without_flooders(self):
        from repro.netmodel import LongitudinalConfig, LongitudinalScenario

        scenario = LongitudinalScenario(
            LongitudinalConfig(scale=0.002, snapshots=2, seed=3, flooders=False)
        )
        assert scenario.flooders == []
        from repro.core import CampaignRunner

        result = CampaignRunner(scenario).run()
        assert all(snap.detection.count == 0 for snap in result.snapshots)

    def test_mining_disabled_scenario(self):
        scenario = ProtocolScenario(
            ProtocolConfig(n_reachable=5, seed=3, mining=False)
        )
        scenario.start(warmup=300.0)
        assert scenario.mining is None
        assert scenario.best_height == 0
        assert scenario.sync_fraction() == 1.0  # everyone at genesis

    def test_premine_with_replacements_ibd(self):
        scenario = ProtocolScenario(
            ProtocolConfig(
                n_reachable=10, seed=4, pre_mined_blocks=25,
                block_interval=600.0,
            )
        )
        scenario.start(warmup=60.0)
        joiner = scenario.add_replacement_node()
        scenario.sim.run_for(1500.0)
        assert joiner.chain.height >= 25


class TestSyncCampaignConfigPropagation:
    def test_fields_reach_the_scenario(self):
        from repro.core import SyncCampaignConfig, run_sync_campaign

        config = SyncCampaignConfig(
            n_reachable=20,
            churn_per_10min=6.0,
            pre_mined_blocks=10,
            duration=600.0,
            warmup=120.0,
            sample_period=60.0,
            poll_spread=30.0,
            seed=5,
        )
        result = run_sync_campaign(config)
        assert result.config is config
        assert len(result.sync_samples) == 10
