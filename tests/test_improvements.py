"""Integration tests for the §V Bitcoin Core refinements.

Each policy is exercised against the baseline in a controlled world to
verify the *mechanism* improves what the paper claims it improves.  The
full quantitative ablation lives in ``benchmarks/bench_improvements.py``.
"""

from __future__ import annotations

import pytest

from repro.bitcoin import NodeConfig, PolicyConfig
from repro.bitcoin.config import ADDRMAN_HORIZON_DAYS
from repro.core import run_connection_success
from repro.netmodel import ProtocolConfig, ProtocolScenario
from repro.units import DAYS

from .conftest import make_addr, make_node


class TestPolicyConfig:
    def test_defaults_are_baseline(self):
        policy = PolicyConfig()
        assert policy.label() == "baseline"
        assert policy.tried_horizon_days == ADDRMAN_HORIZON_DAYS

    def test_improved_bundle(self):
        policy = PolicyConfig.improved()
        assert policy.addr_from_tried_only
        assert policy.tried_horizon_days == 17.0
        assert policy.prioritize_block_relay
        assert policy.label() == "tried-only+17d+block-prio"

    def test_partial_labels(self):
        assert PolicyConfig(addr_from_tried_only=True).label() == "tried-only"
        assert PolicyConfig(tried_horizon_days=17.0).label() == "17d"


class TestTriedOnlyAddrPolicy:
    def _world(self, sim, policy):
        """An honest server with a polluted new table + a fresh client."""
        server = make_node(
            sim, 1, NodeConfig(policies=policy, serve_repeated_getaddr=True)
        )
        # Pollute the server's new table with dead addresses; its tried
        # table gains entries only through real connections.
        server.bootstrap([make_addr(i + 100) for i in range(80)])
        server.start()
        helper = make_node(sim, 2)
        helper.bootstrap([server.addr])
        helper.start()
        sim.run_for(60.0)  # helper connects; server promotes it to tried
        client = make_node(sim, 3)
        client.bootstrap([server.addr])
        client.start()
        sim.run_for(60.0)
        return server, client

    def test_baseline_gossips_pollution(self, sim):
        _server, client = self._world(sim, PolicyConfig())
        polluted = sum(
            1
            for index in range(80)
            if make_addr(index + 100) in client.addrman
        )
        assert polluted > 0

    def test_tried_only_gossips_clean(self, sim):
        server, client = self._world(
            sim, PolicyConfig(addr_from_tried_only=True)
        )
        polluted = sum(
            1
            for index in range(80)
            if make_addr(index + 100) in client.addrman
        )
        assert polluted == 0
        # But real (tried) addresses still flow.
        learned = [
            addr
            for addr in client.addrman.all_addresses()
            if addr not in (server.addr,)
        ]
        assert learned  # the helper's address arrived


class TestHorizonPolicy:
    def test_17d_horizon_evicts_departed_sooner(self, sim):
        short = make_node(
            sim, 1, NodeConfig(policies=PolicyConfig(tried_horizon_days=17.0))
        )
        long = make_node(sim, 2)  # 30-day baseline
        stale = make_addr(50)
        for node in (short, long):
            node.addrman.add(stale, now=0.0, timestamp=0.0)
        now = 20 * DAYS
        assert short.addrman.get_addr(now=now) == []
        assert [r.addr for r in long.addrman.get_addr(now=now)] == [stale]


class TestImprovedPoliciesEndToEnd:
    @pytest.mark.slow
    def test_improved_policies_raise_connection_success(self):
        """tried-only gossip should lift the §IV-B success rate."""

        def run(policy):
            scenario = ProtocolScenario(
                ProtocolConfig(
                    n_reachable=40,
                    seed=23,
                    mining=False,
                    node_config=NodeConfig(policies=policy),
                )
            )
            scenario.start(warmup=1200.0)
            observer_config = NodeConfig(
                policies=policy, track_connection_attempts=True
            )
            result = run_connection_success(
                scenario, runs=3, duration=240.0, observer_config=observer_config
            )
            return result.overall_rate

        baseline = run(PolicyConfig())
        improved = run(PolicyConfig.improved())
        assert improved > baseline
