"""Tests for the addrman new/tried tables and eviction rules."""

from __future__ import annotations

import random

import pytest

from repro.bitcoin.addrman import AddrInfo, AddrMan
from repro.units import DAYS

from .conftest import make_addr


@pytest.fixture
def addrman():
    return AddrMan(rng=random.Random(5), key=77)


class TestAdd:
    def test_new_address_lands_in_new_table(self, addrman):
        addr = make_addr(1)
        assert addrman.add(addr, now=0.0) is True
        assert addrman.new_count == 1
        assert addrman.tried_count == 0
        assert addr in addrman

    def test_duplicate_add_refreshes_timestamp(self, addrman):
        addr = make_addr(1)
        addrman.add(addr, now=0.0, timestamp=0.0)
        assert addrman.add(addr, now=100.0, timestamp=100.0) is False
        assert addrman.info(addr).timestamp == 100.0

    def test_duplicate_add_never_regresses_timestamp(self, addrman):
        addr = make_addr(1)
        addrman.add(addr, now=100.0, timestamp=100.0)
        addrman.add(addr, now=200.0, timestamp=50.0)
        assert addrman.info(addr).timestamp == 100.0

    def test_future_timestamps_clamped(self, addrman):
        addr = make_addr(1)
        addrman.add(addr, now=0.0, timestamp=1e9)
        assert addrman.info(addr).timestamp <= 600.0

    def test_bucket_overflow_evicts(self):
        # One bucket of size 2: the third same-group address evicts one.
        addrman = AddrMan(
            rng=random.Random(5), new_buckets=1, tried_buckets=1, bucket_size=2
        )
        for index in range(3):
            addrman.add(make_addr(index), now=0.0)
        assert addrman.new_count == 2
        assert len(addrman) == 2


class TestGoodAndAttempt:
    def test_good_promotes_to_tried(self, addrman):
        addr = make_addr(1)
        addrman.add(addr, now=0.0)
        addrman.good(addr, now=10.0)
        assert addrman.tried_count == 1
        assert addrman.new_count == 0
        assert addrman.info(addr).in_tried

    def test_good_on_unknown_address_adopts_it(self, addrman):
        addr = make_addr(1)
        addrman.good(addr, now=0.0)
        assert addr in addrman
        assert addrman.info(addr).in_tried

    def test_good_resets_attempts(self, addrman):
        addr = make_addr(1)
        addrman.add(addr, now=0.0)
        for _ in range(5):
            addrman.attempt(addr, now=1.0)
        addrman.good(addr, now=2.0)
        assert addrman.info(addr).attempts == 0

    def test_attempt_counts(self, addrman):
        addr = make_addr(1)
        addrman.add(addr, now=0.0)
        addrman.attempt(addr, now=5.0)
        addrman.attempt(addr, now=6.0)
        info = addrman.info(addr)
        assert info.attempts == 2
        assert info.last_try == 6.0

    def test_tried_collision_displaces_back_to_new(self):
        addrman = AddrMan(
            rng=random.Random(5), new_buckets=4, tried_buckets=1, bucket_size=1
        )
        a, b = make_addr(1), make_addr(2)
        for addr in (a, b):
            addrman.add(addr, now=0.0)
            addrman.good(addr, now=1.0)
        # Only one tried slot exists: one of them was displaced to new.
        assert addrman.tried_count == 1
        assert addrman.new_count == 1
        assert len(addrman) == 2


class TestSelect:
    def test_select_from_empty_returns_none(self, addrman):
        assert addrman.select(now=0.0) is None

    def test_select_returns_known_address(self, addrman):
        for index in range(10):
            addrman.add(make_addr(index), now=0.0)
        for _ in range(20):
            assert addrman.select(now=1.0) in addrman

    def test_select_new_only(self, addrman):
        tried_addr, new_addr = make_addr(1), make_addr(2)
        addrman.add(tried_addr, now=0.0)
        addrman.good(tried_addr, now=0.0)
        addrman.add(new_addr, now=0.0)
        for _ in range(20):
            assert addrman.select(now=1.0, new_only=True) == new_addr

    def test_select_roughly_even_between_tables(self, addrman):
        tried_addr, new_addr = make_addr(1), make_addr(2)
        addrman.add(tried_addr, now=0.0)
        addrman.good(tried_addr, now=0.0)
        addrman.add(new_addr, now=0.0)
        picks = [addrman.select(now=1.0) for _ in range(400)]
        tried_share = picks.count(tried_addr) / len(picks)
        assert 0.35 < tried_share < 0.65

    def test_select_evicts_terrible(self, addrman):
        stale = make_addr(1)
        addrman.add(stale, now=0.0, timestamp=0.0)
        # 31 days later the entry is beyond the horizon.
        assert addrman.select(now=31 * DAYS) is None
        assert stale not in addrman


class TestIsTerrible:
    def _info(self, **kwargs):
        base = dict(addr=make_addr(1), source=None, timestamp=0.0)
        base.update(kwargs)
        return AddrInfo(**base)

    def test_fresh_is_fine(self):
        info = self._info(timestamp=1000.0)
        assert not info.is_terrible(now=1000.0, horizon=30 * DAYS)

    def test_horizon_eviction(self):
        info = self._info(timestamp=0.0)
        assert info.is_terrible(now=31 * DAYS, horizon=30 * DAYS)

    def test_shorter_horizon_evicts_sooner(self):
        """The §V refinement: 17-day horizon drops stale entries earlier."""
        info = self._info(timestamp=0.0)
        now = 20 * DAYS
        assert info.is_terrible(now, horizon=17 * DAYS)
        assert not info.is_terrible(now, horizon=30 * DAYS)

    def test_never_successful_after_retries(self):
        info = self._info(timestamp=1000.0, attempts=3)
        assert info.is_terrible(now=1000.0, horizon=30 * DAYS)

    def test_many_failures_after_week(self):
        info = self._info(
            timestamp=20 * DAYS, last_success=1.0, attempts=10
        )
        assert info.is_terrible(now=20 * DAYS, horizon=30 * DAYS)

    def test_recent_try_is_protected(self):
        info = self._info(timestamp=0.0, last_try=31 * DAYS - 30)
        assert not info.is_terrible(now=31 * DAYS, horizon=30 * DAYS)

    def test_future_timestamp_is_terrible(self):
        info = self._info(timestamp=5000.0)
        assert info.is_terrible(now=1000.0, horizon=30 * DAYS)


class TestGetAddr:
    def _fill(self, addrman, count, now=0.0):
        for index in range(count):
            addrman.add(make_addr(index), now=now, timestamp=now)

    def test_capped_at_23_percent(self, addrman):
        self._fill(addrman, 1000)
        response = addrman.get_addr(now=0.0)
        assert len(response) == 230

    def test_capped_at_1000(self, addrman):
        self._fill(addrman, 6000)
        response = addrman.get_addr(now=0.0)
        assert len(response) == 1000

    def test_tried_only_policy(self, addrman):
        self._fill(addrman, 50)
        good = make_addr(999)
        addrman.add(good, now=0.0)
        addrman.good(good, now=0.0)
        response = addrman.get_addr(now=0.0, tried_only=True)
        assert [record.addr for record in response] == [good]

    def test_no_duplicates(self, addrman):
        self._fill(addrman, 500)
        response = addrman.get_addr(now=0.0)
        addrs = [record.addr for record in response]
        assert len(addrs) == len(set(addrs))

    def test_terrible_excluded_and_evicted(self, addrman):
        self._fill(addrman, 10, now=0.0)
        response = addrman.get_addr(now=40 * DAYS)
        assert response == []
        assert len(addrman) == 0

    def test_empty_tables(self, addrman):
        assert addrman.get_addr(now=0.0) == []


class TestEvictTerrible:
    def test_sweep(self, addrman):
        for index in range(10):
            addrman.add(make_addr(index), now=0.0, timestamp=0.0)
        fresh = make_addr(100)
        addrman.add(fresh, now=35 * DAYS, timestamp=35 * DAYS)
        evicted = addrman.evict_terrible(now=35 * DAYS)
        assert evicted == 10
        assert list(addrman.all_addresses()) == [fresh]

    def test_remove_unknown_is_noop(self, addrman):
        addrman.remove(make_addr(1))
        assert len(addrman) == 0
