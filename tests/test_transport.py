"""Tests for the simulated TCP transport: listeners, connects, probes."""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.errors import AddressInUseError, ConnectionClosedError
from repro.simnet import ProbeBehavior, ProbeResult
from repro.simnet.transport import Socket

from .conftest import make_addr


class Recorder:
    """A handler recording everything that happens to it."""

    def __init__(self, accept: bool = True):
        self.accept = accept
        self.messages: List = []
        self.disconnects: List[Socket] = []
        self.inbound: List[Socket] = []

    def on_inbound_connection(self, socket: Socket) -> bool:
        if not self.accept:
            return False
        self.inbound.append(socket)
        socket.handler = self
        return True

    def on_message(self, socket: Socket, message) -> None:
        self.messages.append((socket, message))

    def on_disconnect(self, socket: Socket) -> None:
        self.disconnects.append(socket)


def connect(sim, src, dst, handler) -> List[Optional[Socket]]:
    out: List[Optional[Socket]] = []
    sim.network.connect(src, dst, handler, out.append)
    sim.run_for(30.0)
    return out


class TestConnect:
    def test_successful_connect(self, sim):
        listener = Recorder()
        a, b = make_addr(1), make_addr(2)
        sim.network.listen(b, listener)
        client = Recorder()
        result = connect(sim, a, b, client)
        assert result[0] is not None
        assert result[0].is_inbound is False
        assert listener.inbound[0].is_inbound is True

    def test_connect_succeeds_fast(self, sim):
        listener = Recorder()
        a, b = make_addr(1), make_addr(2)
        sim.network.listen(b, listener)
        out = []
        sim.network.connect(a, b, Recorder(), out.append)
        sim.run_for(1.0)
        assert out and out[0] is not None  # ~1.5 RTT, far below 1 s

    def test_refused_when_listener_declines(self, sim):
        listener = Recorder(accept=False)
        a, b = make_addr(1), make_addr(2)
        sim.network.listen(b, listener)
        result = connect(sim, a, b, Recorder())
        assert result == [None]
        assert sim.network.connects_refused == 1

    def test_silent_target_times_out_slowly(self, sim):
        a, b = make_addr(1), make_addr(2)
        out = []
        sim.network.connect(a, b, Recorder(), out.append, timeout=5.0)
        sim.run_for(4.9)
        assert out == []  # still waiting
        sim.run_for(0.2)
        assert out == [None]
        assert sim.network.connects_timed_out == 1

    def test_rst_target_fails_fast(self, sim):
        a, b = make_addr(1), make_addr(2)
        sim.network.set_probe_behavior(b, ProbeBehavior.RST)
        out = []
        sim.network.connect(a, b, Recorder(), out.append, timeout=5.0)
        sim.run_for(1.0)
        assert out == [None]  # one RTT, not the timeout

    def test_fin_behaviour_also_fails_connect_fast(self, sim):
        a, b = make_addr(1), make_addr(2)
        sim.network.set_probe_behavior(b, ProbeBehavior.FIN)
        out = []
        sim.network.connect(a, b, Recorder(), out.append, timeout=5.0)
        sim.run_for(1.0)
        assert out == [None]

    def test_duplicate_listener_rejected(self, sim):
        addr = make_addr(3)
        sim.network.listen(addr, Recorder())
        with pytest.raises(AddressInUseError):
            sim.network.listen(addr, Recorder())

    def test_listener_vanishing_mid_handshake(self, sim):
        listener = Recorder()
        a, b = make_addr(1), make_addr(2)
        sim.network.listen(b, listener)
        out = []
        sim.network.connect(a, b, Recorder(), out.append)
        sim.network.stop_listening(b)  # before the handshake completes
        sim.run_for(30.0)
        assert out == [None]


class DummyMsg:
    def __init__(self, size=100, tag=""):
        self.wire_size = size
        self.tag = tag


class TestMessaging:
    def _pair(self, sim):
        listener = Recorder()
        client = Recorder()
        a, b = make_addr(1), make_addr(2)
        sim.network.listen(b, listener)
        sock = connect(sim, a, b, client)[0]
        return sock, listener, client

    def test_send_delivers(self, sim):
        sock, listener, _client = self._pair(sim)
        sock.send(DummyMsg(tag="hello"))
        sim.run_for(5.0)
        assert listener.messages[0][1].tag == "hello"

    def test_fifo_per_direction(self, sim):
        """Jitter must never reorder messages on one socket (TCP)."""
        sock, listener, _client = self._pair(sim)
        for index in range(50):
            sock.send(DummyMsg(tag=index))
        sim.run_for(10.0)
        tags = [msg.tag for _sock, msg in listener.messages]
        assert tags == sorted(tags)

    def test_reply_path(self, sim):
        sock, listener, client = self._pair(sim)
        sock.send(DummyMsg(tag="ping"))
        sim.run_for(5.0)
        in_sock = listener.inbound[0]
        in_sock.send(DummyMsg(tag="pong"))
        sim.run_for(5.0)
        assert client.messages[0][1].tag == "pong"

    def test_extra_delay_applies(self, sim):
        sock, listener, _client = self._pair(sim)
        start = sim.now
        sock.send(DummyMsg(tag="slow"), extra_delay=3.0)
        sim.run_for(10.0)
        assert listener.messages  # delivered
        # Can't observe delivery time directly; assert nothing arrived early.

    def test_send_on_closed_socket_raises(self, sim):
        sock, _listener, _client = self._pair(sim)
        sock.close()
        with pytest.raises(ConnectionClosedError):
            sock.send(DummyMsg())

    def test_close_notifies_peer(self, sim):
        sock, listener, _client = self._pair(sim)
        sock.close()
        sim.run_for(5.0)
        assert listener.disconnects == [listener.inbound[0]]

    def test_packets_to_closed_socket_dropped(self, sim):
        sock, listener, _client = self._pair(sim)
        in_sock = listener.inbound[0]
        sock.send(DummyMsg(tag="late"))
        in_sock.open = False
        sim.run_for(5.0)
        assert listener.messages == []

    def test_byte_accounting(self, sim):
        sock, _listener, _client = self._pair(sim)
        sock.send(DummyMsg(size=500))
        sock.send(DummyMsg(size=300))
        assert sock.bytes_sent == 800
        assert sock.messages_sent == 2


class TestDisconnectHost:
    def test_disconnect_host_closes_everything(self, sim):
        listener = Recorder()
        b = make_addr(2)
        sim.network.listen(b, listener)
        socks = [connect(sim, make_addr(i + 10), b, Recorder())[0] for i in range(3)]
        closed = sim.network.disconnect_host(b)
        assert closed == 3
        assert not sim.network.is_listening(b)
        sim.run_for(5.0)
        assert all(not sock.open for sock in socks)


class TestProbe:
    def test_probe_silent_default(self, sim):
        out = []
        sim.network.probe(make_addr(1), make_addr(2), out.append, timeout=5.0)
        sim.run_for(6.0)
        assert out == [ProbeResult.SILENT]

    def test_probe_fin(self, sim):
        target = make_addr(2)
        sim.network.set_probe_behavior(target, ProbeBehavior.FIN)
        out = []
        sim.network.probe(make_addr(1), target, out.append)
        sim.run_for(2.0)
        assert out == [ProbeResult.FIN]

    def test_probe_rst(self, sim):
        target = make_addr(2)
        sim.network.set_probe_behavior(target, ProbeBehavior.RST)
        out = []
        sim.network.probe(make_addr(1), target, out.append)
        sim.run_for(2.0)
        assert out == [ProbeResult.RST]

    def test_probe_listener_is_bitcoin(self, sim):
        target = make_addr(2)
        sim.network.listen(target, Recorder())
        out = []
        sim.network.probe(make_addr(1), target, out.append)
        sim.run_for(2.0)
        assert out == [ProbeResult.BITCOIN]

    def test_probe_behavior_reset_to_silent(self, sim):
        target = make_addr(2)
        sim.network.set_probe_behavior(target, ProbeBehavior.FIN)
        sim.network.set_probe_behavior(target, ProbeBehavior.SILENT)
        assert sim.network.probe_behavior(target) is ProbeBehavior.SILENT
