"""Stress tests for initial block download under adverse conditions."""

from __future__ import annotations

import pytest

from repro.bitcoin import Block, MiningProcess
from repro.netmodel import ProtocolConfig, ProtocolScenario

from .conftest import build_small_network, make_node


class TestIBDUnderStress:
    def test_joiner_syncs_while_chain_grows(self, sim):
        """IBD must converge even though the tip keeps moving."""
        nodes = build_small_network(sim, 10)
        sim.run_for(120.0)
        mining = MiningProcess(sim, lambda: nodes, block_interval=30.0)
        mining.start()
        sim.run_for(300.0)  # ~10 blocks on chain
        joiner = make_node(sim, 99)
        joiner.bootstrap([node.addr for node in nodes])
        joiner.start()
        sim.run_for(600.0)
        assert joiner.chain.height >= mining.best_height - 1

    def test_serving_peer_dies_mid_ibd(self, sim):
        """Losing the block-serving peer must not wedge the download."""
        nodes = build_small_network(sim, 10)
        sim.run_for(120.0)
        prev = 0
        for height in range(1, 31):
            block = Block(
                block_id=height, prev_id=prev, height=height,
                created_at=sim.now, size=400_000,
            )
            nodes[0].submit_block(block)
            prev = height
            sim.run_for(5.0)
        sim.run_for(120.0)
        joiner = make_node(sim, 99)
        joiner.bootstrap([node.addr for node in nodes])
        joiner.start()
        sim.run_for(20.0)  # download under way
        # Kill whichever peers the joiner is pulling from.
        serving = [
            next(n for n in nodes if n.addr == p.remote_addr)
            for p in joiner.peers.values()
            if p.blocks_in_flight
        ]
        for server in serving:
            server.stop()
        sim.run_for(900.0)
        assert joiner.chain.height == 30

    def test_many_concurrent_joiners(self, sim):
        """Several IBDs through the same small network converge."""
        nodes = build_small_network(sim, 8)
        sim.run_for(120.0)
        prev = 0
        for height in range(1, 16):
            nodes[0].submit_block(
                Block(
                    block_id=height, prev_id=prev, height=height,
                    created_at=sim.now, size=200_000,
                )
            )
            prev = height
        sim.run_for(60.0)
        joiners = []
        for index in range(5):
            joiner = make_node(sim, 200 + index)
            joiner.bootstrap([node.addr for node in nodes])
            joiner.start()
            joiners.append(joiner)
        sim.run_for(900.0)
        for joiner in joiners:
            assert joiner.chain.height == 15

    def test_out_of_order_block_bursts(self, sim):
        """A burst of orphan-order announcements still connects fully."""
        a, b = make_node(sim, 1), make_node(sim, 2)
        a.bootstrap([b.addr])
        a.start()
        b.start()
        sim.run_for(30.0)
        blocks = []
        prev = 0
        for height in range(1, 11):
            block = Block(
                block_id=height, prev_id=prev, height=height,
                created_at=sim.now, size=1000,
            )
            blocks.append(block)
            prev = height
        # Feed b the chain in reverse through the public entry point of
        # the acceptance path.
        for block in reversed(blocks):
            b._accept_block(None, block)  # noqa: SLF001
        assert b.chain.height == 10
        assert b.chain.orphan_count == 0
        # And a catches up over the wire.
        b._wake_handler()  # noqa: SLF001
        sim.run_for(120.0)
        assert a.chain.height == 10


class TestChurnDuringIBD:
    @pytest.mark.slow
    def test_network_survives_sustained_churn(self):
        scenario = ProtocolScenario(
            ProtocolConfig(
                n_reachable=30,
                seed=71,
                block_interval=300.0,
                pre_mined_blocks=50,
                churn_per_10min=10.0,
            )
        )
        scenario.start(warmup=600.0)
        scenario.sim.run_for(2 * 3600.0)
        running = scenario.running_nodes()
        # The network neither collapses nor wedges.
        assert len(running) >= 18
        synced = sum(
            1 for node in running if node.chain.height >= scenario.best_height
        )
        assert synced / len(running) > 0.5
        # Blocks kept being produced throughout.
        assert scenario.mining.blocks_mined >= 10
