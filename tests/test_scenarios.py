"""Tests for the two scenario builders."""

from __future__ import annotations

import pytest

from repro.bitcoin import NodeConfig
from repro.errors import ScenarioError
from repro.netmodel import (
    LongitudinalConfig,
    LongitudinalScenario,
    ProtocolConfig,
    ProtocolScenario,
)
from repro.units import DAYS


class TestLongitudinalScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return LongitudinalScenario(
            LongitudinalConfig(scale=0.005, snapshots=6, seed=3)
        )

    def test_population_classes_built(self, scenario):
        summary = scenario.population.summary()
        assert summary["reachable"] > 0
        assert summary["responsive"] > 0
        assert summary["silent"] > summary["responsive"]

    def test_snapshot_times_cover_campaign(self, scenario):
        times = scenario.snapshot_times
        assert len(times) == 6
        assert times[0] > 0
        assert times[-1] < scenario.config.campaign_days * DAYS
        assert times == sorted(times)

    def test_materialize_starts_alive_servers_only(self, scenario):
        when = scenario.snapshot_times[0]
        scenario.materialize_snapshot(when)
        alive = {record.addr for record in scenario.alive_reachable(when)}
        for addr, server in scenario.servers.items():
            assert server.listening == (addr in alive)

    def test_tables_have_configured_mixture(self, scenario):
        when = scenario.snapshot_times[1]
        scenario.materialize_snapshot(when)
        alive = scenario.alive_reachable(when)
        server = scenario.servers[alive[0].addr]
        reachable_in_table = sum(
            1
            for addr in server.table
            if scenario.population.is_reachable_addr(addr)
        )
        share = reachable_in_table / len(server.table)
        assert share == pytest.approx(
            scenario.config.addr_reachable_share, abs=0.05
        )

    def test_snapshots_must_advance(self, scenario):
        with pytest.raises(ScenarioError):
            scenario.materialize_snapshot(0.0)

    def test_gossip_pool_is_unreachable_only(self, scenario):
        when = scenario.snapshot_times[2]
        pool = scenario.gossip_pool(when)
        assert pool
        assert not any(
            scenario.population.is_reachable_addr(addr) for addr in pool
        )

    def test_flooders_planted(self, scenario):
        assert scenario.flooders  # scale floor keeps at least one


class TestProtocolScenario:
    def test_standing_network_syncs(self):
        scenario = ProtocolScenario(
            ProtocolConfig(n_reachable=30, seed=5, block_interval=120.0)
        )
        scenario.start(warmup=1800.0)
        assert scenario.best_height >= 4  # Poisson mean 15
        assert scenario.sync_fraction() > 0.9

    def test_pre_mined_chain_loaded_everywhere(self):
        scenario = ProtocolScenario(
            ProtocolConfig(n_reachable=10, seed=5, pre_mined_blocks=40)
        )
        assert scenario.best_height == 40
        assert all(node.chain.height == 40 for node in scenario.nodes)

    def test_replacement_node_starts_fresh(self):
        scenario = ProtocolScenario(
            ProtocolConfig(n_reachable=15, seed=5, pre_mined_blocks=20)
        )
        scenario.start(warmup=300.0)
        joiner = scenario.add_replacement_node()
        assert joiner is not None
        assert joiner.chain.height == 0
        scenario.sim.run_for(1200.0)
        assert joiner.chain.height >= 20  # caught up through IBD

    def test_replacement_pool_recycles_addresses(self):
        scenario = ProtocolScenario(ProtocolConfig(n_reachable=5, seed=5, mining=False))
        scenario.start()
        pool_size = len(scenario._replacement_pool)  # noqa: SLF001
        joiners = [scenario.add_replacement_node() for _ in range(pool_size)]
        assert all(j is not None for j in joiners)
        # Pool exhausted; stop one node and ask again: address recycled.
        victim = scenario.nodes[0]
        victim.stop()
        recycled = scenario.add_replacement_node()
        assert recycled is not None
        assert recycled.addr == victim.addr
        assert victim not in scenario.nodes

    def test_observer_node_tables_polluted(self):
        scenario = ProtocolScenario(ProtocolConfig(n_reachable=20, seed=5, mining=False))
        observer = scenario.make_observer_node()
        reachable = sum(
            1
            for addr in observer.addrman.all_addresses()
            if scenario.population.is_reachable_addr(addr)
        )
        total = len(observer.addrman)
        assert total > 0
        assert reachable / total == pytest.approx(
            scenario.config.addr_reachable_share, abs=0.08
        )

    def test_churn_process_replaces_nodes(self):
        scenario = ProtocolScenario(
            ProtocolConfig(
                n_reachable=20, seed=5, mining=False, churn_per_10min=30.0
            )
        )
        scenario.start(warmup=1800.0)
        assert scenario.churn is not None
        assert scenario.churn.departures
        assert scenario.churn.arrivals
        running = len(scenario.running_nodes())
        assert 12 <= running <= 28  # size hovers near 20

    def test_node_config_not_shared_between_nodes(self):
        scenario = ProtocolScenario(
            ProtocolConfig(
                n_reachable=4, seed=5, mining=False,
                node_config=NodeConfig(max_outbound=3),
            )
        )
        a, b = scenario.nodes[0], scenario.nodes[1]
        assert a.config is not b.config
        assert a.config.max_outbound == 3
        a.config.proc_times["block"] = 99.0
        assert b.config.proc_times["block"] != 99.0

    def test_validation(self):
        with pytest.raises(ScenarioError):
            ProtocolScenario(ProtocolConfig(n_reachable=1))
