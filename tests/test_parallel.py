"""Multi-seed runner: parallel execution must merge identically to
sequential, because ``Pool.map`` preserves seed order and every run is a
pure function of its seed."""

from __future__ import annotations

import pytest

from repro.core.parallel import (
    default_workers,
    run_2019_vs_2020_sweep,
    run_multi_seed,
    run_sync_campaign_sweep,
    seed_range,
)
from repro.core.sync_experiments import SyncCampaignConfig

#: Small enough to run two full sweeps in a test, large enough to churn.
TINY = SyncCampaignConfig(
    n_reachable=8,
    churn_per_10min=3.0,
    pre_mined_blocks=15,
    sample_period=120.0,
    poll_spread=80.0,
    warmup=150.0,
    duration=600.0,
    seed=5,
)


def _square(seed: int) -> int:
    return seed * seed


class TestRunMultiSeed:
    def test_results_in_seed_order(self):
        assert run_multi_seed(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_parallel_results_in_seed_order(self):
        assert run_multi_seed(_square, [3, 1, 2], workers=2) == [9, 1, 4]

    def test_single_seed_runs_inline(self):
        assert run_multi_seed(_square, [7], workers=8) == [49]

    def test_seed_range(self):
        assert seed_range(10, 3) == [10, 11, 12]
        with pytest.raises(ValueError):
            seed_range(10, 0)

    def test_default_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert default_workers(8) == 1
        monkeypatch.setenv("REPRO_WORKERS", "64")
        assert default_workers(3) == 3  # capped by task count


class TestSyncSweep:
    def test_parallel_equals_sequential(self):
        seeds = [5, 6]
        seq = run_sync_campaign_sweep(TINY, seeds, workers=1)
        par = run_sync_campaign_sweep(TINY, seeds, workers=2)
        assert seq.seeds == par.seeds == seeds
        # Bit-identical per-seed results and merged sample stream.
        assert seq.sync_samples == par.sync_samples
        for a, b in zip(seq.per_seed, par.per_seed):
            assert a.sync_samples == b.sync_samples
            assert a.sync_departures_per_10min == b.sync_departures_per_10min
            assert a.total_departures == b.total_departures
        assert seq.mean == par.mean
        assert seq.sync_departures_per_10min == par.sync_departures_per_10min

    def test_merge_is_seed_ordered_concatenation(self):
        sweep = run_sync_campaign_sweep(TINY, [5, 6], workers=1)
        expected = sweep.per_seed[0].sync_samples + sweep.per_seed[1].sync_samples
        assert sweep.sync_samples == expected

    def test_seeds_actually_vary_the_runs(self):
        sweep = run_sync_campaign_sweep(TINY, [5, 6], workers=1)
        a, b = sweep.per_seed
        assert a.config.seed == 5 and b.config.seed == 6

    def test_density_over_pooled_samples(self):
        sweep = run_sync_campaign_sweep(TINY, [5, 6], workers=1)
        estimate = sweep.density()
        assert estimate.count == len(sweep.sync_samples)


class TestContrastSweep:
    def test_labels_and_churn_levels(self):
        sweep = run_2019_vs_2020_sweep(TINY, seeds=[5], workers=1)
        assert set(sweep) == {"2019", "2020"}
        assert sweep["2019"].per_seed[0].config.churn_per_10min == 5.0
        assert sweep["2020"].per_seed[0].config.churn_per_10min == 14.0

    def test_single_seed_matches_direct_run(self):
        from repro.core.sync_experiments import run_sync_campaign
        from dataclasses import replace

        sweep = run_2019_vs_2020_sweep(TINY, seeds=[5], workers=1)
        direct = run_sync_campaign(replace(TINY, churn_per_10min=5.0, seed=5))
        assert sweep["2019"].sync_samples == direct.sync_samples
