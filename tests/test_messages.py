"""Tests for wire-message sizing and constraints."""

from __future__ import annotations

import pytest

from repro.bitcoin.blockchain import Block
from repro.bitcoin.messages import (
    Addr,
    BlockMsg,
    BlockTxn,
    CmpctBlock,
    GetAddr,
    GetBlocks,
    GetBlockTxn,
    GetData,
    HEADER_SIZE,
    Inv,
    InvItem,
    InvType,
    Ping,
    Pong,
    SendCmpct,
    TxMsg,
    Verack,
    Version,
)
from repro.simnet.addresses import TimestampedAddr

from .conftest import make_addr


def _records(count):
    return tuple(
        TimestampedAddr(make_addr(index), 0.0) for index in range(count)
    )


class TestSizes:
    def test_all_sizes_include_header(self):
        block = Block(block_id=1, prev_id=0, height=1, created_at=0.0, size=500)
        messages = [
            Version(make_addr(1), make_addr(2), 0),
            Verack(),
            GetAddr(),
            Addr(addresses=_records(3)),
            Inv(items=(InvItem(InvType.TX, 1),)),
            GetData(items=(InvItem(InvType.BLOCK, 1),)),
            TxMsg(txid=1, size=300),
            BlockMsg(block=block),
            SendCmpct(high_bandwidth=True),
            CmpctBlock(block=block),
            GetBlockTxn(block_id=1, txids=(1, 2)),
            BlockTxn(block_id=1, txids=(1, 2), total_size=700),
            GetBlocks(from_height=5),
            Ping(),
            Pong(),
        ]
        for message in messages:
            assert message.wire_size >= HEADER_SIZE, message.command

    def test_addr_size_scales_with_records(self):
        small = Addr(addresses=_records(1))
        large = Addr(addresses=_records(100))
        assert large.wire_size - small.wire_size == 99 * 30

    def test_addr_rejects_over_1000(self):
        with pytest.raises(ValueError):
            Addr(addresses=_records(1001))

    def test_addr_accepts_exactly_1000(self):
        assert len(Addr(addresses=_records(1000)).addresses) == 1000

    def test_block_size_dominates_blockmsg(self):
        block = Block(block_id=1, prev_id=0, height=1, created_at=0.0, size=1_000_000)
        assert BlockMsg(block=block).wire_size == HEADER_SIZE + 1_000_000

    def test_cmpct_much_smaller_than_full_block(self):
        block = Block(
            block_id=1,
            prev_id=0,
            height=1,
            created_at=0.0,
            size=1_000_000,
            txids=tuple(range(2000)),
        )
        assert CmpctBlock(block=block).wire_size < BlockMsg(block=block).wire_size / 50

    def test_inv_size_scales(self):
        one = Inv(items=(InvItem(InvType.TX, 1),))
        ten = Inv(items=tuple(InvItem(InvType.TX, index) for index in range(10)))
        assert ten.wire_size - one.wire_size == 9 * 36

    def test_version_carries_height(self):
        msg = Version(make_addr(1), make_addr(2), start_height=123)
        assert msg.start_height == 123

    def test_commands_are_distinct(self):
        block = Block(block_id=1, prev_id=0, height=1, created_at=0.0)
        commands = {
            msg.command
            for msg in [
                Version(make_addr(1), make_addr(2), 0),
                Verack(),
                GetAddr(),
                Addr(addresses=()),
                Inv(items=()),
                GetData(items=()),
                TxMsg(txid=1),
                BlockMsg(block=block),
                SendCmpct(),
                CmpctBlock(block=block),
                GetBlockTxn(block_id=1, txids=()),
                BlockTxn(block_id=1, txids=(), total_size=0),
                GetBlocks(from_height=0),
                Ping(),
                Pong(),
            ]
        }
        assert len(commands) == 15

    def test_cmpctblock_exposes_block_identity(self):
        block = Block(block_id=7, prev_id=6, height=3, created_at=0.0, txids=(1, 2))
        msg = CmpctBlock(block=block)
        assert msg.block_id == 7
        assert msg.txids == (1, 2)
