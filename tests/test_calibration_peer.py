"""Tests for the calibration constants' self-consistency and the Peer state."""

from __future__ import annotations

import pytest

from repro.bitcoin.messages import GetAddr, Ping
from repro.bitcoin.peer import Peer
from repro.netmodel import calibration as cal
from repro.simnet import Simulator
from repro.simnet.transport import Socket

from .conftest import make_addr


class TestCalibrationConsistency:
    def test_responsive_share_matches_counts(self):
        share = cal.CUMULATIVE_RESPONSIVE / cal.CUMULATIVE_UNREACHABLE
        assert share == pytest.approx(cal.RESPONSIVE_SHARE_CUMULATIVE, abs=0.01)

    def test_addr_shares_sum_to_one(self):
        assert cal.ADDR_REACHABLE_SHARE + cal.ADDR_UNREACHABLE_SHARE == pytest.approx(1.0)

    def test_unreachable_ratio_consistent(self):
        ratio = cal.CUMULATIVE_UNREACHABLE / cal.CUMULATIVE_REACHABLE
        assert ratio == pytest.approx(cal.UNREACHABLE_TO_REACHABLE_RATIO, rel=0.05)

    def test_daily_churn_rate_consistent(self):
        rate = cal.DAILY_CHURN_NODES / cal.CONNECTED_PER_SNAPSHOT
        assert rate == pytest.approx(cal.DAILY_CHURN_RATE, abs=0.005)

    def test_common_addrs_bounded_by_sources(self):
        assert cal.COMMON_ADDRS_PER_SNAPSHOT <= cal.DNS_ADDRS_PER_SNAPSHOT
        assert cal.COMMON_ADDRS_PER_SNAPSHOT <= cal.BITNODES_ADDRS_PER_SNAPSHOT

    def test_excluded_bounded(self):
        assert cal.EXCLUDED_COMMON <= min(cal.EXCLUDED_BITNODES, cal.EXCLUDED_DNS)

    @pytest.mark.parametrize(
        "top",
        [cal.TOP_AS_REACHABLE, cal.TOP_AS_UNREACHABLE, cal.TOP_AS_RESPONSIVE],
    )
    def test_table1_tops_sorted_descending(self, top):
        percents = [pct for _asn, pct in top]
        assert percents == sorted(percents, reverse=True)
        assert len(top) == 20
        assert sum(percents) < 100.0

    def test_table1_overlap_is_ten(self):
        sets = [
            {asn for asn, _p in top}
            for top in (
                cal.TOP_AS_REACHABLE,
                cal.TOP_AS_UNREACHABLE,
                cal.TOP_AS_RESPONSIVE,
            )
        ]
        assert len(sets[0] & sets[1] & sets[2]) == 10

    def test_sync_values_ordered(self):
        assert cal.SYNC_MEAN_2020 < cal.SYNC_MEAN_2019
        assert cal.SYNC_MEDIAN_2020 < cal.SYNC_MEDIAN_2019
        assert cal.SYNC_DEPARTURES_2019 < cal.SYNC_DEPARTURES_2020

    def test_headline_targets_structure(self):
        targets = cal.headline_targets()
        names = {t.name for t in targets}
        assert "fig1-sync" in names
        assert all(t.values for t in targets)


class TestPeer:
    def _peer(self, inbound=False):
        sim = Simulator(seed=1)
        socket = Socket(
            sim.network, make_addr(1), make_addr(2), inbound, opened_at=0.0
        )
        return Peer(socket, connected_at=0.0)

    def test_direction_labels(self):
        assert self._peer(inbound=True).direction == "inbound"
        assert self._peer(inbound=False).direction == "outbound"

    def test_enqueue_order_default(self):
        peer = self._peer()
        first, second = GetAddr(), Ping()
        peer.enqueue_send(first)
        peer.enqueue_send(second)
        assert list(peer.send_queue) == [first, second]

    def test_enqueue_front_jumps_queue(self):
        """The §V priority path: blocks go ahead of pending replies."""
        peer = self._peer()
        queued, priority = GetAddr(), Ping()
        peer.enqueue_send(queued)
        peer.enqueue_send(priority, to_front=True)
        assert list(peer.send_queue) == [priority, queued]

    def test_initial_state(self):
        peer = self._peer()
        assert not peer.established
        assert peer.remote_height == -1
        assert not peer.pending_tx_invs
        assert not peer.blocks_in_flight
        assert not peer.sent_getaddr
        assert not peer.served_getaddr
