"""Tests for the simulation clock and event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import ClockError, SimulationError
from repro.simnet.clock import SimClock
from repro.simnet.events import Scheduler


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_same_time_is_fine(self):
        clock = SimClock(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_cannot_move_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(ClockError):
            clock.advance_to(9.999)


class TestScheduler:
    def setup_method(self):
        self.clock = SimClock()
        self.sched = Scheduler(self.clock)
        self.fired = []

    def test_events_fire_in_time_order(self):
        self.sched.schedule(3.0, self.fired.append, "c")
        self.sched.schedule(1.0, self.fired.append, "a")
        self.sched.schedule(2.0, self.fired.append, "b")
        while self.sched.run_next():
            pass
        assert self.fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        for label in "abcde":
            self.sched.schedule(1.0, self.fired.append, label)
        while self.sched.run_next():
            pass
        assert self.fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        self.sched.schedule(7.5, lambda: None)
        self.sched.run_next()
        assert self.clock.now == 7.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            self.sched.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        self.clock.advance_to(10.0)
        with pytest.raises(SimulationError):
            self.sched.schedule_at(5.0, lambda: None)

    def test_cancel_prevents_firing(self):
        handle = self.sched.schedule(1.0, self.fired.append, "x")
        self.sched.schedule(2.0, self.fired.append, "y")
        handle.cancel()
        while self.sched.run_next():
            pass
        assert self.fired == ["y"]

    def test_cancel_is_idempotent(self):
        handle = self.sched.schedule(1.0, self.fired.append, "x")
        handle.cancel()
        handle.cancel()
        assert not self.sched.run_next() or self.fired == []

    def test_events_can_schedule_events(self):
        def chain():
            self.fired.append("first")
            self.sched.schedule(1.0, self.fired.append, "second")

        self.sched.schedule(1.0, chain)
        while self.sched.run_next():
            pass
        assert self.fired == ["first", "second"]
        assert self.clock.now == 2.0

    def test_next_event_time_skips_cancelled(self):
        handle = self.sched.schedule(1.0, lambda: None)
        self.sched.schedule(2.0, lambda: None)
        handle.cancel()
        assert self.sched.next_event_time() == 2.0

    def test_run_next_on_empty_heap(self):
        assert self.sched.run_next() is False

    def test_fired_counter(self):
        self.sched.schedule(1.0, lambda: None)
        self.sched.schedule(2.0, lambda: None)
        while self.sched.run_next():
            pass
        assert self.sched.fired == 2

    def test_cancelled_event_drops_references(self):
        big = object()
        handle = self.sched.schedule(1.0, lambda x: None, big)
        handle.cancel()
        assert handle.args == ()
