"""Node tiers and hybrid fidelity.

The contract under test: a hybrid-fidelity run — light-tier endpoints
standing in for the unreachable cloud — is *bit-identical* to the
full-fidelity run of the same seed, because the transport answers
connects and probes the same way for a probe-behavior table entry and a
registered light endpoint, and installing the cloud draws the RNG in the
same order either way.
"""

import pickle

import pytest

from repro.bitcoin import (
    BitcoinNode,
    LightNode,
    LightNodeProfile,
    NodeBehavior,
    NodeConfig,
    describe_tier,
    validate_fidelity,
)
from repro.bitcoin.messages import Message
from repro.core.pipeline import CampaignConfig, CampaignRunner
from repro.core.sync_experiments import SyncCampaignConfig, run_sync_campaign
from repro.errors import ScenarioError
from repro.netmodel.scenario import (
    LongitudinalConfig,
    LongitudinalScenario,
    ProtocolConfig,
    ProtocolScenario,
)
from repro.simnet.addresses import NetAddr
from repro.simnet.simulator import Simulator
from repro.simnet.transport import ProbeBehavior, ProbeResult
from repro.store.manifest import run_key


# ---------------------------------------------------------------------------
# The light tier itself
# ---------------------------------------------------------------------------


class TestLightNode:
    def test_no_instance_dict(self):
        sim = Simulator(seed=1)
        node = LightNode(sim, NetAddr.parse("10.0.0.1"))
        assert not hasattr(node, "__dict__")
        assert not hasattr(LightNodeProfile(), "__dict__")

    def test_tier_tags(self):
        sim = Simulator(seed=1)
        node = LightNode(sim, NetAddr.parse("10.0.0.1"))
        assert node.is_light and describe_tier(node) == "light"
        full = BitcoinNode(sim, NetAddr.parse("10.0.0.2"), NodeConfig())
        assert not full.is_light and describe_tier(full) == "full"
        assert isinstance(full, NodeBehavior)

    def test_validate_fidelity(self):
        assert validate_fidelity("full") == "full"
        assert validate_fidelity("hybrid") == "hybrid"
        with pytest.raises(ValueError):
            validate_fidelity("light")  # a node tier, not a scenario knob

    def test_cloud_endpoint_answers_probes(self):
        sim = Simulator(seed=3)
        addr = NetAddr.parse("10.0.0.9")
        node = LightNode(sim, addr, behavior=ProbeBehavior.FIN)
        node.start()
        assert sim.network.tier_census() == {"full": 0, "light": 1}
        results = []
        sim.network.probe(NetAddr.parse("10.0.0.2"), addr, results.append)
        sim.run_for(30.0)
        assert results == [ProbeResult.FIN]
        node.set_behavior(ProbeBehavior.SILENT)
        sim.network.probe(NetAddr.parse("10.0.0.2"), addr, results.append)
        sim.run_for(30.0)
        assert results[1] is ProbeResult.SILENT
        node.stop()
        assert sim.network.tier_census() == {"full": 0, "light": 0}

    def test_listening_light_node_serves_handshake_and_gossip(self):
        sim = Simulator(seed=5)
        table = tuple(
            NetAddr.parse(f"172.16.0.{i}") for i in range(1, 21)
        )
        light = LightNode(
            sim,
            NetAddr.parse("10.1.0.1"),
            profile=LightNodeProfile(listen=True),
            addr_table=table,
        )
        light.start()
        full = BitcoinNode(sim, NetAddr.parse("10.2.0.1"), NodeConfig())
        full.bootstrap([light.addr])
        full.start()
        sim.run_for(300.0)
        # The full node completed the version handshake with the stub...
        assert any(
            peer.remote_addr == light.addr and peer.established
            for peer in full.peers.values()
        )
        # ...and its addrman learned the stub's gossip table (addrman
        # bucketing may evict a few same-/16 records; most must land).
        learned = set(table) & set(full.addrman.all_addresses())
        assert len(learned) >= len(table) // 2

    def test_light_node_pickles(self):
        sim = Simulator(seed=7)
        node = LightNode(sim, NetAddr.parse("10.0.0.3"))
        clone = pickle.loads(pickle.dumps(node))
        assert clone.addr == node.addr
        assert clone.behavior is node.behavior


def test_messages_are_slotted():
    # Hot protocol objects must not carry per-instance dicts (the light
    # tier's memory budget assumes it, and full tier allocates millions).
    assert Message.__slots__ == ()
    for cls in Message.__subclasses__():
        assert "__slots__" in cls.__dict__, f"{cls.__name__} missing slots"


# ---------------------------------------------------------------------------
# Fidelity equivalence: protocol scenarios
# ---------------------------------------------------------------------------


def _protocol_figures(fidelity):
    config = ProtocolConfig(
        seed=11,
        n_reachable=10,
        fidelity=fidelity,
        churn_per_10min=2.0,
        pre_mined_blocks=5,
        tx_rate=0.05,
    )
    scenario = ProtocolScenario(config)
    scenario.start(warmup=120.0)
    scenario.sim.run_for(600.0)
    return scenario, (
        scenario.sim.now,
        tuple(node.chain.height for node in scenario.nodes),
        tuple(
            (node.addr, node.outbound_count) for node in scenario.running_nodes()
        ),
        scenario.sync_fraction(),
    )


def test_protocol_fidelity_equivalence():
    full_scenario, full = _protocol_figures("full")
    hybrid_scenario, hybrid = _protocol_figures("hybrid")
    assert full == hybrid
    assert full_scenario.light_cloud is None
    census = hybrid_scenario.tier_census()
    assert census["light"] == len(hybrid_scenario.light_cloud.nodes) > 0


def test_sync_campaign_fidelity_equivalence():
    base = dict(
        n_reachable=12,
        churn_per_10min=4.0,
        pre_mined_blocks=20,
        warmup=200.0,
        duration=1000.0,
        seed=33,
    )
    full = run_sync_campaign(SyncCampaignConfig(fidelity="full", **base))
    hybrid = run_sync_campaign(SyncCampaignConfig(fidelity="hybrid", **base))
    assert full.sync_samples == hybrid.sync_samples
    assert full.total_departures == hybrid.total_departures
    assert full.sync_departures_per_10min == hybrid.sync_departures_per_10min


# ---------------------------------------------------------------------------
# Fidelity equivalence: the crawl/probe campaign
# ---------------------------------------------------------------------------


def _campaign_figures(fidelity):
    config = LongitudinalConfig(
        scale=0.004, snapshots=2, campaign_days=2.0, seed=9, fidelity=fidelity
    )
    scenario = LongitudinalScenario(config)
    runner = CampaignRunner(scenario, CampaignConfig())
    result = runner.run()
    figures = [
        (
            snap.when,
            len(snap.connected),
            len(snap.unreachable),
            len(snap.responsive),
            snap.new_unreachable,
            snap.new_responsive,
        )
        for snap in result.snapshots
    ]
    return scenario, figures


def test_longitudinal_fidelity_equivalence():
    full_scenario, full = _campaign_figures("full")
    hybrid_scenario, hybrid = _campaign_figures("hybrid")
    assert full == hybrid
    assert hybrid_scenario.light_cloud is not None
    assert len(hybrid_scenario.light_cloud) > 0


# ---------------------------------------------------------------------------
# Mixed-tier snapshot/restore
# ---------------------------------------------------------------------------


def test_mixed_tier_snapshot_restore():
    config = ProtocolConfig(
        seed=17,
        n_reachable=8,
        fidelity="hybrid",
        churn_per_10min=2.0,
        pre_mined_blocks=3,
    )
    scenario = ProtocolScenario(config)
    scenario.start(warmup=60.0)
    blob = scenario.sim.snapshot()
    restored = Simulator.restore(blob)
    census = restored.network.tier_census()
    assert census == scenario.sim.network.tier_census()
    assert census["light"] > 0
    a = scenario.sim.run_for(300.0)
    b = restored.run_for(300.0)
    assert int(a) == int(b)
    assert scenario.sim.now == restored.now


# ---------------------------------------------------------------------------
# Run-store keys
# ---------------------------------------------------------------------------


def test_fidelity_is_part_of_run_keys():
    full = LongitudinalConfig(seed=5, fidelity="full")
    hybrid = LongitudinalConfig(seed=5, fidelity="hybrid")
    keys = {
        run_key("campaign", cfg, seed=5, engine="wheel", snapshots_total=3)
        for cfg in (full, hybrid)
    }
    assert len(keys) == 2


def test_scenario_configs_reject_unknown_fidelity():
    with pytest.raises(ScenarioError):
        ProtocolConfig(fidelity="uhd").validate()
    with pytest.raises(ScenarioError):
        LongitudinalConfig(fidelity="uhd").validate()
