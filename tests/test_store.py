"""Tests for the run store: blobs, checkpoints, manifests, resume.

The subprocess tests at the bottom are the tentpole acceptance pin:
a campaign killed mid-run (hard ``os._exit`` right after a checkpoint
commits) and then resumed produces byte-identical CSV exports and
identical content-store digests to an uninterrupted run — on both
scheduler backends.
"""

from __future__ import annotations

import errno
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import CheckpointError, SimulationError, StoreError
from repro.netmodel.scenario import (
    LongitudinalConfig,
    ProtocolConfig,
    ProtocolScenario,
)
from repro.simnet.simulator import Simulator, resolve_engine
from repro.store import (
    BlobStore,
    RunManifest,
    RunStore,
    SnapshotRecord,
    campaign_key,
    campaign_run_id,
    dump_checkpoint,
    load_checkpoint,
    read_header,
    run_key,
    run_stored_campaign,
    sha256_hex,
)
from repro.store.campaign import CRASH_ENV, CRASH_EXIT_CODE


class TestBlobStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = BlobStore(tmp_path)
        digest = store.put(b"hello world")
        assert digest == sha256_hex(b"hello world")
        assert store.get(digest) == b"hello world"
        assert digest in store
        assert len(store) == 1

    def test_put_is_idempotent(self, tmp_path):
        store = BlobStore(tmp_path)
        a = store.put(b"data")
        b = store.put(b"data")
        assert a == b
        assert len(store) == 1

    def test_get_missing_raises(self, tmp_path):
        store = BlobStore(tmp_path)
        with pytest.raises(StoreError):
            store.get("0" * 64)

    def test_corrupt_blob_detected(self, tmp_path):
        store = BlobStore(tmp_path)
        digest = store.put(b"payload")
        path = store._path(digest)
        path.write_bytes(b"tampered")
        with pytest.raises(StoreError):
            store.get(digest)

    def test_delete_and_totals(self, tmp_path):
        store = BlobStore(tmp_path)
        digest = store.put(b"xyz")
        assert store.total_bytes() == 3
        assert store.delete(digest)
        assert digest not in store
        assert not store.delete(digest)


class TestCheckpointFraming:
    def test_roundtrip(self):
        blob = dump_checkpoint({"a": [1, 2]}, kind="test", meta={"k": 1})
        header = read_header(blob)
        assert header["kind"] == "test"
        assert header["meta"] == {"k": 1}
        assert load_checkpoint(blob, expect_kind="test") == {"a": [1, 2]}

    def test_wrong_kind_rejected(self):
        blob = dump_checkpoint(1, kind="alpha")
        with pytest.raises(CheckpointError):
            load_checkpoint(blob, expect_kind="beta")

    def test_bad_magic_rejected(self):
        blob = dump_checkpoint(1, kind="t")
        with pytest.raises(CheckpointError):
            load_checkpoint(b"NOTMAGIC" + blob[8:])

    def test_truncated_payload_rejected(self):
        blob = dump_checkpoint(list(range(100)), kind="t")
        with pytest.raises(CheckpointError):
            load_checkpoint(blob[:-5])

    def test_flipped_payload_bit_rejected(self):
        blob = bytearray(dump_checkpoint(list(range(100)), kind="t"))
        blob[-1] ^= 0xFF
        with pytest.raises(CheckpointError):
            load_checkpoint(bytes(blob))

    def test_sets_pickle_canonically(self):
        # Same values, different insertion histories: the canonical
        # pickler must emit identical bytes, else content addressing
        # would see two different "states" for one logical state.
        grown = set()
        for value in (9, 4, 7, 1, 8, 3):
            grown.add(value)
        grown.discard(9)
        rebuilt = {1, 3, 4, 7, 8}
        assert grown == rebuilt
        a = dump_checkpoint(grown, kind="t")
        b = dump_checkpoint(rebuilt, kind="t")
        assert a == b
        # and the restored object really is a set
        assert load_checkpoint(a, expect_kind="t") == rebuilt


class TestRunKey:
    def test_deterministic_and_sensitive(self):
        base = dict(kind="campaign", config={"x": 1}, seed=3,
                    engine="wheel", snapshots_total=5)
        key = run_key(**base)
        assert key == run_key(**base)
        assert key != run_key(**{**base, "seed": 4})
        assert key != run_key(**{**base, "engine": "heap"})
        assert key != run_key(**{**base, "config": {"x": 2}})

    def test_campaign_key_resolves_engine(self):
        config = LongitudinalConfig(seed=1, scale=0.002, snapshots=2)
        assert campaign_key(config, None) == campaign_key(config, None)
        run_id = campaign_run_id(campaign_key(config, None))
        assert run_id.startswith("campaign-")


class TestRunStore:
    def _manifest(self, run_id="campaign-abc", key="k1"):
        return RunManifest(
            run_id=run_id, key=key, kind="campaign", seed=1,
            engine="wheel", snapshots_total=2, config={"scenario": {}},
        )

    def test_manifest_roundtrip(self, tmp_path):
        store = RunStore(tmp_path)
        manifest = self._manifest()
        manifest.snapshots.append(
            SnapshotRecord(index=0, when=10.0, digest="d" * 64)
        )
        store.save_manifest(manifest)
        loaded = store.load_manifest("campaign-abc")
        assert loaded == manifest
        assert store.has_run("campaign-abc")
        assert store.find_by_key("k1").run_id == "campaign-abc"
        assert store.find_by_key("nope") is None

    def test_index_written(self, tmp_path):
        store = RunStore(tmp_path)
        store.save_manifest(self._manifest())
        assert store.index_path.exists()
        assert "campaign-abc" in store.index()

    def test_gc_removes_only_unreferenced(self, tmp_path):
        store = RunStore(tmp_path)
        kept = store.put_blob(b"referenced")
        dropped = store.put_blob(b"garbage")
        manifest = self._manifest()
        manifest.snapshots.append(
            SnapshotRecord(index=0, when=1.0, digest=kept)
        )
        store.save_manifest(manifest)
        dry = store.gc(dry_run=True)
        assert dropped in dry["removed"] and kept not in dry["removed"]
        assert dropped in store.blobs  # dry run deletes nothing
        report = store.gc()
        assert report["removed"] == [dropped]
        assert kept in store.blobs and dropped not in store.blobs

    def test_diff_reports_config_drift(self, tmp_path):
        store = RunStore(tmp_path)
        a = self._manifest(run_id="campaign-a", key="ka")
        b = self._manifest(run_id="campaign-b", key="kb")
        b.seed = 2
        b.config = {"scenario": {"seed": 2}}
        store.save_manifest(a)
        store.save_manifest(b)
        report = store.diff("campaign-a", "campaign-b")
        assert "seed" in report["fields"]
        assert "scenario" in report["config"]

    def test_invalid_run_id_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(StoreError):
            store.load_manifest("../escape")


class TestSimulatorSnapshot:
    @pytest.mark.parametrize("engine", ["wheel", "heap"])
    def test_restore_replays_identically(self, engine, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        assert resolve_engine(None) == engine
        original = ProtocolScenario(
            ProtocolConfig(seed=31, n_reachable=10, n_responsive=4,
                           n_silent=4, pre_mined_blocks=5),
        )
        assert original.sim.engine == engine
        original.sim.run_for(120.0)
        blob = original.sim.snapshot()
        header = read_header(blob)
        assert header["kind"] == "simulator"
        assert header["meta"]["now"] == original.sim.now

        restored = Simulator.restore(blob)
        assert restored.engine == original.sim.engine
        a = original.sim.run_for(600.0)
        b = restored.run_for(600.0)
        assert int(a) == int(b)
        assert original.sim.now == restored.now
        assert original.sim.scheduler.fired == restored.scheduler.fired

    def test_restore_rejects_wrong_kind(self):
        blob = dump_checkpoint({"not": "a simulator"}, kind="other")
        with pytest.raises((CheckpointError, SimulationError)):
            Simulator.restore(blob)

    def test_snapshot_keeps_perf_recorder(self):
        sim = Simulator(seed=1, perf=True)
        assert sim.perf is not None
        sim.snapshot()
        # the recorder is excluded from the payload but must survive
        # on the live simulator
        assert sim.perf is not None
        assert sim.scheduler.perf is sim.perf


def _tiny_config(engine):
    return LongitudinalConfig(
        seed=13, scale=0.01, snapshots=3, campaign_days=1.0, engine=engine
    )


class TestStoredCampaign:
    def test_cache_hit_skips_simulation(self, tmp_path):
        config = _tiny_config("wheel")
        first = run_stored_campaign(tmp_path, config)
        assert not first.cached
        assert first.manifest.status == "complete"
        assert first.manifest.engine == "wheel"
        second = run_stored_campaign(tmp_path, config)
        assert second.cached
        assert second.manifest.run_id == first.manifest.run_id
        assert (
            [len(s.connected) for s in second.result.snapshots]
            == [len(s.connected) for s in first.result.snapshots]
        )

    def test_force_reexecutes(self, tmp_path):
        config = _tiny_config("wheel")
        run_stored_campaign(tmp_path, config)
        again = run_stored_campaign(tmp_path, config, force=True)
        assert not again.cached

    def test_resume_wrong_config_rejected(self, tmp_path):
        config = _tiny_config("wheel")
        first = run_stored_campaign(tmp_path, config)
        other = LongitudinalConfig(
            seed=14, scale=0.01, snapshots=3, campaign_days=1.0,
            engine="wheel",
        )
        with pytest.raises(StoreError):
            run_stored_campaign(
                tmp_path, other, resume=first.manifest.run_id
            )

    def test_manifest_records_per_snapshot_outputs(self, tmp_path):
        config = _tiny_config("wheel")
        stored = run_stored_campaign(tmp_path, config)
        manifest = stored.manifest
        assert manifest.completed_snapshots == 3
        assert [s.index for s in manifest.snapshots] == [0, 1, 2]
        whens = [s.when for s in manifest.snapshots]
        assert whens == sorted(whens)
        assert [s.when for s in stored.result.snapshots] == whens
        store = RunStore(tmp_path)
        for record in manifest.snapshots:
            snap = load_checkpoint(
                store.get_blob(record.digest), expect_kind="snapshot-result"
            )
            assert snap.index == record.index


_CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.netmodel.scenario import LongitudinalConfig
from repro.store import run_stored_campaign
config = LongitudinalConfig(
    seed=13, scale=0.01, snapshots=3, campaign_days=1.0, engine={engine!r}
)
run_stored_campaign({store!r}, config)
"""


def _run_child(store: Path, engine: str, crash_after=None) -> int:
    env = dict(os.environ)
    env.pop(CRASH_ENV, None)
    if crash_after is not None:
        env[CRASH_ENV] = str(crash_after)
    src = str(Path(__file__).resolve().parent.parent / "src")
    script = _CHILD_SCRIPT.format(src=src, engine=engine, store=str(store))
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True,
        text=True, timeout=600,
    )
    if crash_after is None and proc.returncode != 0:
        raise AssertionError(f"child failed: {proc.stderr}")
    return proc.returncode


@pytest.mark.slow
class TestKillAndResume:
    """The acceptance pin: kill -9 mid-campaign, resume, compare."""

    @pytest.mark.parametrize("engine", ["wheel", "heap"])
    def test_resumed_run_is_bit_identical(self, tmp_path, engine):
        from repro.core.export import export_campaign_series

        interrupted = tmp_path / "interrupted"
        uninterrupted = tmp_path / "uninterrupted"

        # Child 1 hard-exits right after snapshot 0's checkpoint commits.
        code = _run_child(interrupted, engine, crash_after=0)
        assert code == CRASH_EXIT_CODE
        store = RunStore(interrupted)
        manifest = store.manifests()[0]
        assert manifest.status == "running"
        assert manifest.completed_snapshots == 1
        assert manifest.checkpoint is not None

        # Child 2 (same invocation) auto-resumes from the checkpoint.
        assert _run_child(interrupted, engine) == 0
        resumed = store.load_manifest(manifest.run_id)
        assert resumed.status == "complete"
        assert resumed.completed_snapshots == 3

        # Child 3 runs the same campaign uninterrupted in a second store.
        assert _run_child(uninterrupted, engine) == 0
        fresh = RunStore(uninterrupted).load_manifest(manifest.run_id)

        # Content addressing makes the comparison exact: every snapshot
        # blob and the final result blob must hash identically.
        assert [s.digest for s in resumed.snapshots] == [
            s.digest for s in fresh.snapshots
        ]
        assert resumed.result_digest == fresh.result_digest

        # And the user-facing artifact: byte-identical CSV exports.
        result_resumed = run_stored_campaign(
            interrupted, _child_config(engine)
        )
        result_fresh = run_stored_campaign(
            uninterrupted, _child_config(engine)
        )
        assert result_resumed.cached and result_fresh.cached
        path_a = export_campaign_series(
            result_resumed.result, tmp_path / "a.csv"
        )
        path_b = export_campaign_series(
            result_fresh.result, tmp_path / "b.csv"
        )
        assert path_a.read_bytes() == path_b.read_bytes()


def _child_config(engine: str) -> LongitudinalConfig:
    return LongitudinalConfig(
        seed=13, scale=0.01, snapshots=3, campaign_days=1.0, engine=engine
    )


class TestReadOnlyStore:
    """A read-only store root surfaces ReadOnlyStoreError, not raw
    OSError — the serving layer maps it to 503 (retryable), not 500."""

    @staticmethod
    def _deny_mkstemp(monkeypatch):
        import tempfile

        def refuse(*args, **kwargs):
            raise OSError(errno.EROFS, "read-only file system")

        monkeypatch.setattr(tempfile, "mkstemp", refuse)

    def test_blob_put_surfaces_read_only(self, tmp_path, monkeypatch):
        from repro.errors import ReadOnlyStoreError
        from repro.store.blobs import BlobStore

        blobs = BlobStore(tmp_path / "store")
        self._deny_mkstemp(monkeypatch)
        with pytest.raises(ReadOnlyStoreError, match="not writable"):
            blobs.put(b"payload")

    def test_manifest_save_surfaces_read_only(self, tmp_path, monkeypatch):
        from repro.errors import ReadOnlyStoreError

        store = RunStore(tmp_path / "store")
        manifest = RunManifest(
            run_id="campaign-feedfeedfeed", kind="campaign",
            key="feed" * 16, config={}, seed=1, engine="event",
            snapshots_total=1,
        )
        self._deny_mkstemp(monkeypatch)
        with pytest.raises(ReadOnlyStoreError, match="not writable"):
            store.save_manifest(manifest)

    def test_read_only_error_is_a_store_error(self):
        from repro.errors import ReadOnlyStoreError

        assert issubclass(ReadOnlyStoreError, StoreError)

    def test_run_stored_campaign_surfaces_read_only(
        self, tmp_path, monkeypatch
    ):
        from repro.errors import ReadOnlyStoreError

        config = LongitudinalConfig(
            seed=5, scale=0.002, snapshots=2, campaign_days=1.0
        )
        self._deny_mkstemp(monkeypatch)
        with pytest.raises(ReadOnlyStoreError, match="cannot"):
            run_stored_campaign(tmp_path / "store", config)

    def test_unrelated_oserror_passes_through(self, tmp_path, monkeypatch):
        import tempfile

        from repro.errors import ReadOnlyStoreError
        from repro.store.blobs import BlobStore

        blobs = BlobStore(tmp_path / "store")

        def explode(*args, **kwargs):
            raise OSError(errno.ENOSPC, "no space left on device")

        monkeypatch.setattr(tempfile, "mkstemp", explode)
        with pytest.raises(OSError) as excinfo:
            blobs.put(b"payload")
        assert not isinstance(excinfo.value, ReadOnlyStoreError)
        assert excinfo.value.errno == errno.ENOSPC
