"""Accounting invariants: population trims, campaign bookkeeping, goldens."""

from __future__ import annotations

import pytest

from repro.netmodel import (
    LongitudinalConfig,
    LongitudinalScenario,
    NodeClass,
)
from repro.simnet.rand import derive_seed


class TestFlooderAccounting:
    @pytest.fixture(scope="class")
    def scenario(self):
        return LongitudinalScenario(
            LongitudinalConfig(scale=0.005, snapshots=3, seed=9)
        )

    def test_silent_pool_debited_by_flood_volumes(self, scenario):
        total_fakes = sum(f.flood_volume for f in scenario.flooders)
        config = scenario.population.config
        expected_silent = config.n_silent - total_fakes
        # trim_silent stops at one record, so allow the floor.
        assert len(scenario.population.silent) == max(1, expected_silent)

    def test_minted_fakes_registered(self, scenario):
        # Force one flooder to mint a few addresses.
        flooder = scenario.flooders[0]
        response = flooder._sample_response()  # noqa: SLF001
        assert response
        for record in response:
            assert (
                scenario.population.classify(record.addr) is NodeClass.FAKE
            )

    def test_total_unreachable_budget_conserved(self, scenario):
        """silent + responsive + (eventual) fakes ≈ the calibrated total."""
        config = scenario.population.config
        budget = config.n_responsive + config.n_silent
        current = (
            len(scenario.population.silent)
            + len(scenario.population.responsive)
            + sum(f.flood_volume for f in scenario.flooders)
        )
        assert current == pytest.approx(budget, abs=2)


class TestGoldenSeeds:
    """Pin the seed-derivation values: any change breaks reproducibility
    of every published experiment, so it must be deliberate."""

    def test_derive_seed_golden(self):
        assert derive_seed(0, "latency") == derive_seed(0, "latency")
        # Exact values, stable across platforms (SHA-256 based).
        assert derive_seed(0) == derive_seed(0)
        assert derive_seed(1, "a") != derive_seed(1, "a", "")

    def test_derive_seed_known_values(self):
        # Golden values computed once; a change means every seeded run
        # in EXPERIMENTS.md silently diverges.
        assert derive_seed(42, "mining") == derive_seed(42, "mining")
        value = derive_seed(42, "mining")
        assert isinstance(value, int)
        assert value == int(value)
        import hashlib

        hasher = hashlib.sha256()
        hasher.update(b"42")
        hasher.update(b"/")
        hasher.update(b"mining")
        expected = int.from_bytes(hasher.digest()[:8], "big")
        assert value == expected


class TestCampaignBookkeeping:
    @pytest.fixture(scope="class")
    def campaign(self):
        from repro.core import CampaignRunner

        scenario = LongitudinalScenario(
            LongitudinalConfig(scale=0.003, snapshots=3, seed=29)
        )
        return scenario, CampaignRunner(scenario).run()

    def test_new_counts_sum_to_cumulative(self, campaign):
        _scenario, result = campaign
        assert sum(s.new_unreachable for s in result.snapshots) == len(
            result.cumulative_unreachable
        )
        assert sum(s.new_responsive for s in result.snapshots) == len(
            result.cumulative_responsive
        )

    def test_cumulative_reachable_is_union_of_connected(self, campaign):
        _scenario, result = campaign
        union = set()
        for snap in result.snapshots:
            union |= snap.connected
        assert union == result.cumulative_reachable

    def test_fig_series_lengths_match(self, campaign):
        _scenario, result = campaign
        n = len(result.snapshots)
        fig4 = result.fig4_series()
        fig5 = result.fig5_series()
        assert len(fig4["per_snapshot"]) == len(fig4["cumulative"]) == n
        assert len(fig5["per_snapshot"]) == len(fig5["cumulative"]) == n
        assert len(result.fig3_rows()) == n

    def test_responsive_always_within_snapshot_unreachable(self, campaign):
        _scenario, result = campaign
        for snap in result.snapshots:
            assert snap.responsive <= snap.unreachable
