"""Property-based tests of the transport layer (hypothesis)."""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.simnet import LatencyConfig, NetAddr, Simulator

from .conftest import make_addr


class _Sink:
    def __init__(self):
        self.received: List = []

    def on_inbound_connection(self, socket) -> bool:
        socket.handler = self
        return True

    def on_message(self, socket, message) -> None:
        self.received.append(message.tag)

    def on_disconnect(self, socket) -> None:
        pass


class _Msg:
    def __init__(self, tag, size):
        self.tag = tag
        self.wire_size = size


def _connected_socket(sim, listener):
    out = []
    sim.network.connect(make_addr(1), make_addr(2), _Sink(), out.append)
    sim.run_for(10.0)
    return out[0]


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    sizes=st.lists(st.integers(min_value=24, max_value=100_000), min_size=1, max_size=40),
    gaps=st.lists(st.floats(min_value=0.0, max_value=0.5), min_size=1, max_size=40),
)
def test_fifo_delivery_under_any_jitter(seed, sizes, gaps):
    """No send may overtake an earlier send on the same socket."""
    sim = Simulator(seed=seed, latency_config=LatencyConfig(jitter=0.5))
    listener = _Sink()
    sim.network.listen(make_addr(2), listener)
    sock = _connected_socket(sim, listener)
    for index, size in enumerate(sizes):
        gap = gaps[index % len(gaps)]
        sim.run_for(gap)
        sock.send(_Msg(index, size))
    sim.run_for(60.0)
    assert listener.received == sorted(listener.received)
    assert len(listener.received) == len(sizes)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    extra_delays=st.lists(
        st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=20
    ),
)
def test_fifo_holds_with_extra_delays(seed, extra_delays):
    """Sender-side serialization delays must not reorder either."""
    sim = Simulator(seed=seed)
    listener = _Sink()
    sim.network.listen(make_addr(2), listener)
    sock = _connected_socket(sim, listener)
    for index, delay in enumerate(extra_delays):
        sock.send(_Msg(index, 100), extra_delay=delay)
    sim.run_for(120.0)
    assert listener.received == sorted(listener.received)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_every_connect_resolves_exactly_once(seed):
    """on_result fires exactly once per attempt, whatever the target."""
    from repro.simnet import ProbeBehavior

    sim = Simulator(seed=seed)
    listener = _Sink()
    sim.network.listen(make_addr(2), listener)
    sim.network.set_probe_behavior(make_addr(3), ProbeBehavior.RST)
    sim.network.set_probe_behavior(make_addr(4), ProbeBehavior.FIN)
    results: List = []
    for target_index in (2, 3, 4, 5):  # listener, RST, FIN, silent
        sim.network.connect(
            make_addr(1),
            make_addr(target_index),
            _Sink(),
            results.append,
            timeout=5.0,
        )
    sim.run_for(30.0)
    assert len(results) == 4
    successes = [sock for sock in results if sock is not None]
    assert len(successes) == 1  # only the listener accepts

    counters = sim.network
    assert counters.connects_attempted == 4
    assert counters.connects_succeeded == 1
    assert counters.connects_refused + counters.connects_timed_out == 3


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    group_a=st.integers(min_value=1, max_value=5000),
    group_b=st.integers(min_value=1, max_value=5000),
)
def test_latency_symmetry_and_bounds(seed, group_a, group_b):
    sim = Simulator(seed=seed)
    a = NetAddr(ip=(group_a << 16) | 1)
    b = NetAddr(ip=(group_b << 16) | 1)
    model = sim.network.latency
    config = model.config
    forward = model.base_latency(a, b)
    backward = model.base_latency(b, a)
    assert forward == backward
    if group_a == group_b:
        assert forward == config.local_latency
    else:
        assert config.min_latency <= forward <= config.max_latency
