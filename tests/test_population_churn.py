"""Tests for the population generator and churn timelines."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.netmodel import calibration as cal
from repro.netmodel.asmap import ASUniverse
from repro.netmodel.churn import (
    PresenceTimeline,
    ReachableChurnConfig,
    build_reachable_timeline,
    build_unreachable_timeline,
)
from repro.netmodel.population import NodeClass, Population, PopulationConfig
from repro.units import DAYS

from .conftest import make_addr


@pytest.fixture
def population(rng):
    universe = ASUniverse(rng)
    return Population(rng, universe, PopulationConfig(scale=0.005))


class TestPopulationConfig:
    def test_counts_scale(self):
        config = PopulationConfig(scale=0.01)
        assert config.n_reachable == round(cal.CUMULATIVE_REACHABLE * 0.01)
        assert config.n_responsive == round(cal.CUMULATIVE_RESPONSIVE * 0.01)
        total_unreachable = config.n_responsive + config.n_silent
        assert total_unreachable == pytest.approx(
            cal.CUMULATIVE_UNREACHABLE * 0.01, rel=0.01
        )

    def test_invalid_scale(self):
        with pytest.raises(ScenarioError):
            PopulationConfig(scale=0.0).validate()

    def test_overrides(self):
        config = PopulationConfig(scale=1.0, cumulative_reachable=100)
        assert config.n_reachable == 100


class TestPopulation:
    def test_class_sizes(self, population):
        summary = population.summary()
        assert summary["reachable"] == population.config.n_reachable
        assert summary["responsive"] == population.config.n_responsive
        assert summary["silent"] == population.config.n_silent
        assert summary["fake"] == 0

    def test_addresses_unique_across_classes(self, population):
        all_addrs = (
            population.addresses(NodeClass.REACHABLE)
            + population.addresses(NodeClass.RESPONSIVE)
            + population.addresses(NodeClass.SILENT)
        )
        assert len(all_addrs) == len(set(all_addrs))

    def test_classify_ground_truth(self, population):
        for record in population.reachable[:10]:
            assert population.classify(record.addr) is NodeClass.REACHABLE
        for record in population.responsive[:10]:
            assert population.classify(record.addr) is NodeClass.RESPONSIVE
        assert population.classify(make_addr(60000)) is None

    def test_default_port_shares(self, rng):
        universe = ASUniverse(rng)
        population = Population(rng, universe, PopulationConfig(scale=0.05))
        reachable_default = sum(
            1 for r in population.reachable if r.addr.port == 8333
        ) / len(population.reachable)
        unreachable_default = sum(
            1 for r in population.unreachable_records if r.addr.port == 8333
        ) / len(population.unreachable_records)
        assert reachable_default == pytest.approx(0.9578, abs=0.02)
        assert unreachable_default == pytest.approx(0.8854, abs=0.02)

    def test_critical_fraction(self, rng):
        universe = ASUniverse(rng)
        population = Population(rng, universe, PopulationConfig(scale=0.05))
        critical = sum(1 for r in population.reachable if r.critical)
        share = critical / len(population.reachable)
        expected = cal.EXCLUDED_BITNODES / cal.BITNODES_ADDRS_PER_SNAPSHOT
        assert share == pytest.approx(expected, abs=0.02)

    def test_mint_fake_address(self, population):
        record = population.mint_fake_address()
        assert record.node_class is NodeClass.FAKE
        assert population.classify(record.addr) is NodeClass.FAKE
        assert record in population.fake

    def test_is_reachable_addr(self, population):
        assert population.is_reachable_addr(population.reachable[0].addr)
        assert not population.is_reachable_addr(population.silent[0].addr)


class TestPresenceTimeline:
    def test_interval_queries(self):
        timeline = PresenceTimeline(100.0)
        addr = make_addr(1)
        timeline.set_intervals(addr, [(10.0, 20.0), (50.0, 60.0)])
        assert not timeline.alive_at(addr, 5.0)
        assert timeline.alive_at(addr, 15.0)
        assert not timeline.alive_at(addr, 30.0)
        assert timeline.alive_at(addr, 55.0)
        assert timeline.total_online(addr) == 20.0
        assert timeline.lifetime_span(addr) == 50.0

    def test_intervals_clipped_to_campaign(self):
        timeline = PresenceTimeline(100.0)
        addr = make_addr(1)
        timeline.set_intervals(addr, [(-10.0, 20.0), (90.0, 200.0)])
        assert timeline.intervals(addr) == [(0.0, 20.0), (90.0, 100.0)]

    def test_entirely_outside_interval_dropped(self):
        timeline = PresenceTimeline(100.0)
        addr = make_addr(1)
        timeline.set_intervals(addr, [(200.0, 300.0)])
        assert not timeline.ever_seen(addr)

    def test_alive_set(self):
        timeline = PresenceTimeline(100.0)
        a, b = make_addr(1), make_addr(2)
        timeline.set_intervals(a, [(0.0, 50.0)])
        timeline.set_intervals(b, [(40.0, 100.0)])
        assert timeline.alive_set([a, b], 45.0) == [a, b]
        assert timeline.alive_set([a, b], 10.0) == [a]


class TestReachableTimeline:
    def _build(self, rng, count=500, scale=0.02, **kwargs):
        universe = ASUniverse(rng)
        population = Population(
            rng, universe,
            PopulationConfig(scale=scale, cumulative_reachable=int(count / scale)),
        )
        config = ReachableChurnConfig(**kwargs)
        timeline = build_reachable_timeline(
            rng, population.reachable, config, scale=scale
        )
        return population, config, timeline

    def test_always_on_stay_whole_campaign(self, rng):
        population, config, timeline = self._build(rng)
        horizon = config.campaign_days * DAYS
        n_always = round(config.always_on * 0.02)
        for record in population.reachable[:n_always]:
            assert timeline.alive_at(record.addr, 0.0)
            assert timeline.alive_at(record.addr, horizon - 1.0)

    def test_initial_nodes_alive_at_start(self, rng):
        population, config, timeline = self._build(rng)
        n_initial = round(config.initial_alive * 0.02)
        alive_at_start = sum(
            1
            for record in population.reachable[:n_initial]
            if timeline.alive_at(record.addr, 0.0)
        )
        assert alive_at_start == n_initial

    def test_arrivals_spread_over_campaign(self, rng):
        population, config, timeline = self._build(rng)
        n_initial = round(config.initial_alive * 0.02)
        late = population.reachable[n_initial:]
        alive_at_start = sum(
            1 for record in late if timeline.alive_at(record.addr, 0.0)
        )
        assert alive_at_start == 0

    def test_network_size_roughly_stable(self, rng):
        population, config, timeline = self._build(rng)
        horizon = config.campaign_days * DAYS
        sizes = [
            sum(
                1
                for record in population.reachable
                if timeline.alive_at(record.addr, t)
            )
            for t in (0.25 * horizon, 0.5 * horizon, 0.75 * horizon)
        ]
        initial = round(config.initial_alive * 0.02)
        for size in sizes:
            assert 0.6 * initial < size < 1.5 * initial

    def test_validation(self):
        with pytest.raises(ScenarioError):
            ReachableChurnConfig(retire_prob=0.0).validate()
        with pytest.raises(ScenarioError):
            ReachableChurnConfig(mean_session_days=0.0).validate()
        with pytest.raises(ScenarioError):
            ReachableChurnConfig(always_on=99, initial_alive=50).validate()


class TestUnreachableTimeline:
    def test_occupancy_matches_fraction(self, rng):
        universe = ASUniverse(rng)
        population = Population(rng, universe, PopulationConfig(scale=0.01))
        fraction = 0.3
        timeline = build_unreachable_timeline(
            rng, population.silent, 60.0, fraction
        )
        horizon = 60.0 * DAYS
        occupancies = []
        for t in (0.3 * horizon, 0.5 * horizon, 0.7 * horizon):
            alive = sum(
                1
                for record in population.silent
                if timeline.alive_at(record.addr, t)
            )
            occupancies.append(alive / len(population.silent))
        mean_occ = sum(occupancies) / len(occupancies)
        assert fraction * 0.6 < mean_occ < fraction * 1.4

    def test_invalid_fraction(self, rng):
        with pytest.raises(ScenarioError):
            build_unreachable_timeline(rng, [], 60.0, 1.5)
