"""Shared fixtures: simulators, small worlds, helper factories."""

from __future__ import annotations

import random

import pytest

from repro.bitcoin import BitcoinNode, NodeConfig
from repro.simnet import NetAddr, Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(99)


def make_addr(index: int, port: int = 8333) -> NetAddr:
    """Distinct addresses across /16 groups (index < 65536)."""
    return NetAddr(ip=((index + 1) << 16) | 0x0101, port=port)


@pytest.fixture
def addr_factory():
    return make_addr


def make_node(
    sim: Simulator, index: int, config: NodeConfig = None
) -> BitcoinNode:
    return BitcoinNode(sim, make_addr(index), config=config)


@pytest.fixture
def node_factory():
    return make_node


def build_small_network(sim: Simulator, count: int, config_factory=None):
    """``count`` reachable nodes, mutually bootstrapped and started."""
    nodes = []
    for index in range(count):
        config = config_factory() if config_factory is not None else None
        nodes.append(make_node(sim, index, config))
    addrs = [node.addr for node in nodes]
    for node in nodes:
        node.bootstrap(addrs)
        node.start()
    return nodes


@pytest.fixture
def small_network_factory():
    return build_small_network
