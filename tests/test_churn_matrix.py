"""Tests for Algorithm 4: the churn binary matrix and derived stats."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.churn_matrix import (
    analyze,
    build_matrix,
    departures_between,
    synchronized_departures,
)
from repro.errors import AnalysisError

from .conftest import make_addr


def snapshots_from_rows(rows):
    """rows: dict addr-index -> presence string like '11010'."""
    width = len(next(iter(rows.values())))
    snapshots = []
    for column in range(width):
        snapshots.append(
            {
                make_addr(index)
                for index, pattern in rows.items()
                if pattern[column] == "1"
            }
        )
    return snapshots


class TestBuildMatrix:
    def test_basic_shape(self):
        snapshots = snapshots_from_rows({1: "110", 2: "011", 3: "111"})
        matrix = build_matrix(snapshots, [0.0, 10.0, 20.0])
        assert matrix.matrix.shape == (3, 3)
        assert matrix.n_addresses == 3
        assert matrix.snapshot_interval == 10.0

    def test_rows_match_presence(self):
        snapshots = snapshots_from_rows({1: "101"})
        matrix = build_matrix(snapshots, [0.0, 1.0, 2.0])
        row = matrix.matrix[matrix.addresses.index(make_addr(1))]
        assert list(row) == [True, False, True]

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            build_matrix([set()], [0.0, 1.0])

    def test_empty(self):
        with pytest.raises(AnalysisError):
            build_matrix([], [])


class TestAnalyze:
    def test_always_on(self):
        snapshots = snapshots_from_rows({1: "111", 2: "110", 3: "011"})
        stats = analyze(build_matrix(snapshots, [0.0, 1.0, 2.0]))
        assert stats.always_on == 1
        assert stats.unique_nodes == 3

    def test_arrivals_departures(self):
        snapshots = snapshots_from_rows({1: "110", 2: "011", 3: "101"})
        stats = analyze(build_matrix(snapshots, [0.0, 1.0, 2.0]))
        # col0→col1: node3 leaves, node2 arrives; col1→col2: node1 leaves,
        # node3 arrives (a rejoin).
        assert stats.departures == [1, 1]
        assert stats.arrivals == [1, 1]

    def test_rejoin_detection(self):
        snapshots = snapshots_from_rows({1: "101", 2: "111", 3: "110"})
        stats = analyze(build_matrix(snapshots, [0.0, 1.0, 2.0]))
        assert stats.rejoining_nodes == 1

    def test_lifetimes_first_to_last(self):
        snapshots = snapshots_from_rows({1: "0110"})
        stats = analyze(build_matrix(snapshots, [0.0, 10.0, 20.0, 30.0]))
        assert stats.lifetimes == [10.0]

    def test_departure_rate(self):
        snapshots = snapshots_from_rows({1: "11", 2: "10"})
        stats = analyze(build_matrix(snapshots, [0.0, 86400.0]))
        assert stats.departure_rate == pytest.approx(1 / 1.5)

    def test_mean_daily_departures_scales_with_interval(self):
        snapshots = snapshots_from_rows({1: "10", 2: "11"})
        stats = analyze(build_matrix(snapshots, [0.0, 43200.0]))
        assert stats.mean_daily_departures(43200.0) == pytest.approx(2.0)

    def test_single_snapshot_rejected(self):
        with pytest.raises(AnalysisError):
            analyze(build_matrix([{make_addr(1)}], [0.0]))

    @settings(max_examples=40, deadline=None)
    @given(
        presence=st.lists(
            st.lists(st.booleans(), min_size=4, max_size=4),
            min_size=1,
            max_size=30,
        )
    )
    def test_flow_conservation(self, presence):
        """Sum of arrivals - departures equals final minus initial size."""
        snapshots = [
            {make_addr(row) for row, flags in enumerate(presence) if flags[col]}
            for col in range(4)
        ]
        if not any(snapshots):
            return  # nothing ever present: matrix would be empty
        matrix = build_matrix(snapshots, [0.0, 1.0, 2.0, 3.0])
        stats = analyze(matrix)
        net_flow = sum(stats.arrivals) - sum(stats.departures)
        assert net_flow == len(snapshots[-1]) - len(snapshots[0])

    @settings(max_examples=40, deadline=None)
    @given(
        presence=st.lists(
            st.lists(st.booleans(), min_size=3, max_size=3),
            min_size=1,
            max_size=30,
        )
    )
    def test_always_on_never_depart(self, presence):
        snapshots = [
            {make_addr(row) for row, flags in enumerate(presence) if flags[col]}
            for col in range(3)
        ]
        if not any(snapshots):
            return
        stats = analyze(build_matrix(snapshots, [0.0, 1.0, 2.0]))
        assert stats.always_on <= min(len(s) for s in snapshots)


class TestDeparturesBetween:
    def test_basic(self):
        a, b, c = make_addr(1), make_addr(2), make_addr(3)
        assert departures_between({a, b}, {b, c}) == {a}


class TestSynchronizedDepartures:
    def test_counts_only_synced(self):
        a, b = make_addr(1), make_addr(2)
        snapshots = [{a, b}, {b}, set()]
        heights = [{a: 10, b: 8}, {b: 10}, {}]
        best = [10, 10, 11]
        stats = synchronized_departures(snapshots, heights, best)
        # a left synced (10 >= 10); b left synced at window 2 (10 >= 10).
        assert stats.total_departures == 2
        assert stats.synchronized_departures == 2

    def test_behind_node_not_counted(self):
        a = make_addr(1)
        snapshots = [{a}, set()]
        heights = [{a: 5}, {}]
        best = [10, 10]
        stats = synchronized_departures(snapshots, heights, best)
        assert stats.total_departures == 1
        assert stats.synchronized_departures == 0

    def test_per_window_rate(self):
        a, b, c = make_addr(1), make_addr(2), make_addr(3)
        snapshots = [{a, b, c}, {c}, {c}]
        heights = [{a: 1, b: 1, c: 1}, {c: 1}, {c: 1}]
        best = [1, 1, 1]
        stats = synchronized_departures(snapshots, heights, best)
        assert stats.sync_departures_per_window == 1.0

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            synchronized_departures([set()], [{}], [0, 1])

    def test_too_few_snapshots(self):
        with pytest.raises(AnalysisError):
            synchronized_departures([set()], [{}], [0])
