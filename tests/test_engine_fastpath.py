"""Engine fast-path tests: wheel-vs-heap determinism, live counters,
truncated runs, compaction, periodic-task edges, and the perf recorder.

The hybrid wheel scheduler must be *observationally identical* to the
reference single-heap backend — same events, same order, same clock
positions — so most tests here run the same program against both and
compare traces.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simnet import Simulator
from repro.simnet.clock import SimClock
from repro.simnet.events import HeapScheduler, Scheduler

ENGINES = ("wheel", "heap")


def make_scheduler(kind: str, **kwargs):
    clock = SimClock()
    if kind == "wheel":
        return Scheduler(clock, **kwargs)
    return HeapScheduler(clock, **kwargs)


# ---------------------------------------------------------------------------
# Cross-backend determinism (property-based)
# ---------------------------------------------------------------------------
#: One program step: (op, value) interpreted by ``run_program``.
_ops = st.one_of(
    st.tuples(st.just("schedule"), st.floats(0.0, 120.0, allow_nan=False)),
    st.tuples(st.just("cancel"), st.integers(0, 10_000)),
    st.tuples(st.just("run_for"), st.floats(0.0, 30.0, allow_nan=False)),
    st.tuples(st.just("run_events"), st.integers(0, 8)),
)


def run_program(scheduler, program):
    """Interpret a (op, value) list; return the dispatch trace."""
    trace = []
    handles = []

    def fire(tag):
        trace.append((round(scheduler._clock.now, 9), tag))
        # Half the firings schedule a follow-up so the program exercises
        # scheduling from inside callbacks at both backends; the odd tag
        # keeps follow-ups from chaining forever.
        if tag % 2 == 0:
            handles.append(scheduler.schedule(0.75, fire, tag + 100_001))

    for op, value in program:
        if op == "schedule":
            handles.append(scheduler.schedule(value, fire, len(handles)))
        elif op == "cancel":
            if handles:
                handles[value % len(handles)].cancel()
        elif op == "run_for":
            scheduler.run_until(scheduler._clock.now + value)
        elif op == "run_events":
            scheduler.run_until(float("inf"), value)
    # Drain whatever remains so the full order is compared.
    scheduler.run_until(float("inf"), 100_000)
    return trace


@settings(max_examples=120, deadline=None)
@given(st.lists(_ops, min_size=1, max_size=40))
def test_wheel_matches_heap_dispatch_order(program):
    wheel = make_scheduler("wheel")
    heap = make_scheduler("heap")
    assert run_program(wheel, program) == run_program(heap, program)
    assert wheel.fired == heap.fired
    assert wheel.pending == heap.pending == 0
    assert wheel._clock.now == heap._clock.now


@settings(max_examples=60, deadline=None)
@given(
    st.lists(_ops, min_size=1, max_size=40),
    st.integers(2, 16),
    st.floats(0.01, 2.0, allow_nan=False),
)
def test_wheel_geometry_does_not_change_order(program, slots, granularity):
    """Any wheel sizing must produce the reference order (entries merely
    move between the wheel and the far heap)."""
    tiny = make_scheduler("wheel", slots=slots, granularity=granularity)
    heap = make_scheduler("heap")
    assert run_program(tiny, program) == run_program(heap, program)


def test_far_horizon_events_cross_into_wheel():
    """An event scheduled beyond the horizon fires at the right time
    after the clock moves close enough for wheel-resident events to
    interleave with it."""
    fired = []
    for kind in ENGINES:
        sched = make_scheduler(kind)
        trace = []
        horizon = 1024 * 0.05  # default wheel span: 51.2 s
        sched.schedule(horizon * 3, trace.append, "far")
        sched.schedule(horizon * 3 - 0.01, trace.append, "near-far")
        sched.schedule(1.0, trace.append, "near")
        sched.run_until(float("inf"))
        fired.append(trace)
    assert fired[0] == fired[1] == ["near", "near-far", "far"]


# ---------------------------------------------------------------------------
# Live counters: pending vs pending_raw
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kind", ENGINES)
def test_pending_excludes_cancelled(kind):
    sched = make_scheduler(kind)
    handles = [sched.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sched.pending == sched.pending_raw == 10
    for handle in handles[:4]:
        handle.cancel()
    assert sched.pending == 6
    # Lazy cancellation: the raw count still includes stored corpses.
    assert sched.pending_raw >= sched.pending
    assert sched.cancelled_pending == sched.pending_raw - sched.pending

    sched.run_until(float("inf"))
    assert sched.pending == sched.pending_raw == 0
    assert sched.fired == 6


@pytest.mark.parametrize("kind", ENGINES)
def test_cancel_is_idempotent_for_counters(kind):
    sched = make_scheduler(kind)
    handle = sched.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sched.pending == 0
    assert sched.cancelled_total == 1


@pytest.mark.parametrize("kind", ENGINES)
def test_cancel_after_fire_does_not_corrupt_counters(kind):
    sched = make_scheduler(kind)
    handle = sched.schedule(1.0, lambda: None)
    sched.run_until(float("inf"))
    assert sched.pending == 0
    handle.cancel()  # late cancel of an already-fired event
    assert sched.pending == 0
    assert sched.cancelled_total == 0


def test_simulator_repr_reports_live_pending():
    sim = Simulator(seed=1)
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    for handle in handles[:3]:
        handle.cancel()
    assert "pending=2" in repr(sim)


# ---------------------------------------------------------------------------
# Compaction
# ---------------------------------------------------------------------------
def test_wheel_compacts_when_dead_entries_dominate():
    sched = make_scheduler("wheel", compact_min=64)
    handles = [sched.schedule(5.0, lambda: None) for _ in range(200)]
    for handle in handles[:150]:
        handle.cancel()
    assert sched.compactions >= 1
    # Compaction reclaimed storage; only post-compaction corpses (fewer
    # than the threshold, since the dead counter resets) may linger.
    assert sched.pending == 50
    assert sched.pending_raw < 200
    assert sched.cancelled_pending == sched.pending_raw - sched.pending < 64
    sched.run_until(float("inf"))
    assert sched.fired == 50


def test_compaction_preserves_dispatch_order():
    compacting = make_scheduler("wheel", compact_min=8)
    reference = make_scheduler("heap")
    program = []
    for i in range(100):
        program.append(("schedule", (i * 37 % 50) / 3.0))
        # Cancel aggressively so dead entries outnumber live ones and
        # the threshold (8) trips repeatedly mid-program.
        program.append(("cancel", i * 13))
        program.append(("cancel", i * 7 + 3))
        if i % 19 == 0:
            program.append(("run_events", 2))
    assert run_program(compacting, program) == run_program(reference, program)
    assert compacting.compactions >= 1


def test_heap_compaction_is_opt_in():
    plain = make_scheduler("heap")
    handles = [plain.schedule(1.0, lambda: None) for _ in range(300)]
    for handle in handles:
        handle.cancel()
    assert plain.compactions == 0
    assert plain.pending_raw == 300  # corpses linger (seed-faithful laziness)

    compacting = make_scheduler("heap", compact_min=64)
    handles = [compacting.schedule(1.0, lambda: None) for _ in range(300)]
    for handle in handles:
        handle.cancel()
    assert compacting.compactions >= 1
    # All live events are gone; at most a below-threshold tail of
    # corpses (cancelled after the last compaction) may remain stored.
    assert compacting.pending == 0
    assert compacting.pending_raw < 64


# ---------------------------------------------------------------------------
# run_until truncation
# ---------------------------------------------------------------------------
def test_run_until_truncated_flag():
    sim = Simulator(seed=1)
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    result = sim.run_until(100.0, max_events=4)
    assert result == 4  # still behaves as an int
    assert result.dispatched == 4
    assert result.truncated is True
    # Truncated: the clock stays at the last dispatched event, not 100.
    assert sim.now == 4.0

    result = sim.run_until(100.0)
    assert result.dispatched == 6
    assert result.truncated is False
    assert sim.now == 100.0


def test_run_until_not_truncated_at_exact_cap():
    """Hitting the cap exactly when the work runs out still reports
    truncated: the engine cannot know the next event would not qualify."""
    sim = Simulator(seed=1)
    sim.schedule(1.0, lambda: None)
    result = sim.run_until(10.0, max_events=1)
    assert result.dispatched == 1
    assert result.truncated is True


def test_run_for_returns_run_result():
    sim = Simulator(seed=1)
    sim.schedule(0.5, lambda: None)
    result = sim.run_for(2.0)
    assert result.dispatched == 1
    assert result.truncated is False
    assert sim.now == 2.0


# ---------------------------------------------------------------------------
# PeriodicTask edges
# ---------------------------------------------------------------------------
def test_periodic_start_delay_zero_fires_immediately(sim):
    ticks = []
    sim.call_every(10.0, lambda: ticks.append(sim.now), start_delay=0.0)
    sim.run_until(25.0)
    assert ticks == [0.0, 10.0, 20.0]


def test_periodic_stop_before_first_fire(sim):
    ticks = []
    task = sim.call_every(10.0, lambda: ticks.append(sim.now))
    task.stop()
    sim.run_until(100.0)
    assert ticks == []
    assert sim.scheduler.pending == 0


def test_periodic_stop_leaks_no_handles(sim):
    task = sim.call_every(5.0, lambda: None)
    sim.run_until(12.0)
    assert sim.scheduler.pending == 1  # exactly the next firing
    task.stop()
    assert sim.scheduler.pending == 0
    task.stop()  # idempotent
    assert sim.scheduler.pending == 0
    sim.run_until(1000.0)
    assert sim.scheduler.fired == 2  # only the pre-stop firings


def test_periodic_stop_inside_callback_leaves_clean_heap(sim):
    ticks = []

    def tick():
        ticks.append(sim.now)
        task.stop()

    task = sim.call_every(5.0, tick)
    sim.run_until(100.0)
    assert ticks == [5.0]
    assert sim.scheduler.pending == 0


# ---------------------------------------------------------------------------
# Engine selection + perf recorder
# ---------------------------------------------------------------------------
def test_engine_selection_explicit():
    assert isinstance(Simulator(engine="wheel").scheduler, Scheduler)
    assert isinstance(Simulator(engine="heap").scheduler, HeapScheduler)
    with pytest.raises(SimulationError):
        Simulator(engine="btree")


def test_engine_selection_env(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "heap")
    assert isinstance(Simulator().scheduler, HeapScheduler)
    monkeypatch.setenv("REPRO_ENGINE", "wheel")
    assert isinstance(Simulator().scheduler, Scheduler)


@pytest.mark.parametrize("kind", ENGINES)
def test_perf_recorder_smoke(kind):
    sim = Simulator(seed=3, engine=kind, perf=True)

    def tag():
        pass

    for i in range(20):
        sim.schedule(float(i) / 10.0, tag)
    handle = sim.schedule(1.5, tag)
    handle.cancel()
    sim.run_until(5.0)

    report = sim.perf_report()
    assert report["events"] == 20
    assert report["scheduled"] == 21
    assert report["cancelled"] == 1
    assert 0 < report["cancel_ratio"] < 1
    assert report["pending"] == report["pending_raw"] == 0
    assert report["wall_time_s"] > 0
    assert report["busy_time_s"] >= 0
    label = next(iter(report["callbacks"]))
    assert "tag" in label
    assert report["callbacks"][label]["count"] == 20
    # Human rendering should not blow up.
    assert "events" in sim.perf.format_report(sim.scheduler)


def test_perf_off_by_default():
    sim = Simulator(seed=3)
    assert sim.perf is None
    assert sim.perf_report() is None
    assert sim.scheduler.perf is None


def test_perf_instrumented_order_matches_uninstrumented():
    """Instrumentation must not change what runs or when."""
    traces = []
    for perf in (False, True):
        sim = Simulator(seed=9, perf=perf)
        trace = []

        def chain(depth, sim=sim, trace=trace):
            trace.append((sim.now, depth))
            if depth:
                sim.schedule(0.3, chain, depth - 1)

        for i in range(10):
            sim.schedule(float(i) / 4.0, chain, 3)
        sim.run_until(30.0, max_events=25)
        sim.run_until(30.0)
        traces.append(trace)
    assert traces[0] == traces[1]
