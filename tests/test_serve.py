"""Tests for the campaign service (repro.serve).

Each test boots a real service on an ephemeral port and talks to it
over the wire through :class:`repro.serve.client.Client` — the HTTP
layer, routing, streaming, and error mapping are all exercised for
real, not mocked.  Campaigns use the tiny test scenario (scale=0.002,
2 snapshots, ~1s fresh) so the suite stays fast on one core.
"""

import asyncio

import pytest

from repro.serve import CampaignService, Client, ServiceConfig
from repro.store import RunStore

#: The tiny campaign used throughout; fresh ~1s, cached ~ms.
TINY = {"scenario": {"scale": 0.002, "campaign_days": 1.0}, "snapshots": 2}


def tiny(**overrides):
    spec = {"scenario": dict(TINY["scenario"]), "snapshots": 2}
    spec.update(overrides)
    return spec


def with_service(tmp_path, body, **config_kwargs):
    """Boot a service on an ephemeral port, run ``body(service, client)``."""

    async def main():
        config = ServiceConfig(
            store_root=str(tmp_path / "store"),
            port=0,
            log_requests=False,
            **config_kwargs,
        )
        service = CampaignService(config)
        await service.start()
        try:
            async with Client("127.0.0.1", service.port) as client:
                return await body(service, client)
        finally:
            await service.shutdown()

    return asyncio.run(main())


async def stream_to_end(client, job_id, after=0):
    events = []
    async for ev in client.stream_events(
        f"/v1/jobs/{job_id}/events?after={after}"
    ):
        events.append(ev)
    return events


class TestSubmitStreamFetch:
    def test_full_round_trip(self, tmp_path):
        async def body(service, client):
            r = await client.request("POST", "/v1/campaigns", body=tiny())
            assert r.status == 202
            payload = r.json()
            assert payload["disposition"] == "queued"
            job_id = payload["id"]

            events = await stream_to_end(client, job_id)
            kinds = [ev["kind"] for ev in events]
            assert kinds[0] == "job-queued"
            assert kinds[-1] == "job-complete"
            # Per-seed supervisor events came through in grammar order.
            assert kinds.index("scheduled") < kinds.index("started")
            assert kinds.index("started") < kinds.index("completed")
            # Sequence numbers are contiguous from 0 (seq == how many
            # events precede it, matching the ?after= cursor).
            assert [ev["seq"] for ev in events] == list(range(len(events)))

            r = await client.request("GET", f"/v1/jobs/{job_id}")
            desc = r.json()
            assert desc["status"] == "complete"
            (run,) = desc["runs"]
            assert run["status"] == "complete"

            r = await client.request("GET", f"/v1/runs/{run['run_id']}/result")
            assert r.status == 200
            result = r.json()
            assert result["status"] == "complete"
            assert result["snapshots"] == 2
            assert len(result["fig4"]["per_snapshot"]) == 2

            r = await client.request(
                "GET",
                f"/v1/runs/{run['run_id']}/export/campaign_series.csv",
            )
            assert r.status == 200
            assert r.body.startswith(b"snapshot,time_s,")
            return None

        with_service(tmp_path, body)

    def test_event_replay_from_offset(self, tmp_path):
        async def body(service, client):
            r = await client.request("POST", "/v1/campaigns", body=tiny())
            job_id = r.json()["id"]
            full = await stream_to_end(client, job_id)
            # Replay after the first two events: same tail, same seqs.
            tail = await stream_to_end(client, job_id, after=2)
            assert [ev["seq"] for ev in tail] == [
                ev["seq"] for ev in full[2:]
            ]
            return None

        with_service(tmp_path, body)

    def test_runs_and_manifest_endpoints(self, tmp_path):
        async def body(service, client):
            r = await client.request("POST", "/v1/campaigns", body=tiny())
            job_id = r.json()["id"]
            await stream_to_end(client, job_id)
            r = await client.request("GET", "/v1/runs")
            index = r.json()["runs"]
            assert len(index) == 1
            (run_id,) = index
            r = await client.request("GET", f"/v1/runs/{run_id}")
            manifest = r.json()
            assert manifest["run_id"] == run_id
            assert manifest["status"] == "complete"
            # The raw result blob is fetchable by digest.
            r = await client.request(
                "GET", f"/v1/blobs/{manifest['result_digest']}"
            )
            assert r.status == 200
            assert len(r.body) > 0
            return None

        with_service(tmp_path, body)


class TestDeduplication:
    def test_two_identical_submissions_one_simulation(self, tmp_path):
        """The acceptance path: same config twice -> ONE simulation run,
        TWO successful result fetches."""

        async def body(service, client):
            r1 = await client.request("POST", "/v1/campaigns", body=tiny())
            assert r1.status == 202
            assert r1.json()["disposition"] == "queued"
            await stream_to_end(client, r1.json()["id"])

            r2 = await client.request("POST", "/v1/campaigns", body=tiny())
            assert r2.status == 200
            assert r2.json()["disposition"] == "cached"
            assert r2.json()["status"] == "complete"

            # Both jobs point at the same run; fetch its result twice.
            run_ids = {
                run["run_id"]
                for payload in (r1.json(), r2.json())
                for run in payload["runs"]
            }
            assert len(run_ids) == 1
            (run_id,) = run_ids
            for _ in range(2):
                r = await client.request("GET", f"/v1/runs/{run_id}/result")
                assert r.status == 200

            m = (await client.request("GET", "/v1/metrics")).json()
            assert m["submissions"]["cache_hits"] == 1
            assert m["submissions"]["misses"] == 1
            assert m["submissions"]["hit_ratio"] == 0.5
            return None

        with_service(tmp_path, body)
        # Exactly one manifest in the store: one simulation ever ran.
        store = RunStore(str(tmp_path / "store"))
        assert len(store.manifests()) == 1

    def test_identical_inflight_submission_joins(self, tmp_path):
        async def body(service, client):
            r1 = await client.request("POST", "/v1/campaigns", body=tiny())
            assert r1.json()["disposition"] == "queued"
            # Same config while the first is still simulating: join it.
            r2 = await client.request("POST", "/v1/campaigns", body=tiny())
            assert r2.status == 200
            assert r2.json()["disposition"] == "joined"
            assert r2.json()["id"] == r1.json()["id"]
            await stream_to_end(client, r1.json()["id"])
            return None

        with_service(tmp_path, body)
        store = RunStore(str(tmp_path / "store"))
        assert len(store.manifests()) == 1


class TestBackpressureAndQuota:
    def test_busy_service_returns_429_with_retry_after(self, tmp_path):
        async def body(service, client):
            r1 = await client.request("POST", "/v1/campaigns", body=tiny())
            assert r1.status == 202
            # Different config while the only slot is busy and the
            # queue is zero-length: explicit backpressure.
            other = tiny(seeds=[99])
            r2 = await client.request("POST", "/v1/campaigns", body=other)
            assert r2.status == 429
            assert r2.headers["retry-after"] == "3"
            await stream_to_end(client, r1.json()["id"])
            m = (await client.request("GET", "/v1/metrics")).json()
            assert m["submissions"]["rejected_busy"] == 1
            return None

        with_service(
            tmp_path, body, slots=1, queue_limit=0, retry_after=3.0
        )

    def test_quota_exceeded_returns_403_but_cached_is_free(self, tmp_path):
        async def body(service, client):
            r1 = await client.request("POST", "/v1/campaigns", body=tiny())
            await stream_to_end(client, r1.json()["id"])
            # A second fresh run would cross max_runs=1 -> 403.
            r2 = await client.request(
                "POST", "/v1/campaigns", body=tiny(seeds=[99])
            )
            assert r2.status == 403
            assert "quota" in r2.json()["error"]
            # The identical (cached) submission costs nothing.
            r3 = await client.request("POST", "/v1/campaigns", body=tiny())
            assert r3.status == 200
            assert r3.json()["disposition"] == "cached"
            q = (await client.request("GET", "/v1/admin/quota")).json()
            assert q["tenants"]["anon"]["runs_submitted"] == 1
            assert q["tenants"]["anon"]["bytes_stored"] > 0
            m = (await client.request("GET", "/v1/metrics")).json()
            assert m["submissions"]["rejected_quota"] == 1
            return None

        with_service(tmp_path, body, quota_runs=1)

    def test_tenants_are_accounted_separately(self, tmp_path):
        async def body(service, client):
            r = await client.request(
                "POST", "/v1/campaigns", body=tiny(),
                headers={"X-Repro-Tenant": "alice"},
            )
            await stream_to_end(client, r.json()["id"])
            q = (await client.request("GET", "/v1/admin/quota")).json()
            assert q["tenants"]["alice"]["runs_submitted"] == 1
            assert "anon" not in q["tenants"]
            return None

        with_service(tmp_path, body)


class TestValidation:
    def test_unknown_scenario_field_is_400(self, tmp_path):
        async def body(service, client):
            bad = {"scenario": {"scale": 0.002, "sclae": 1}}
            r = await client.request("POST", "/v1/campaigns", body=bad)
            assert r.status == 400
            assert "sclae" in r.json()["error"]
            return None

        with_service(tmp_path, body)

    def test_malformed_json_is_400(self, tmp_path):
        async def body(service, client):
            r = await client.request(
                "POST", "/v1/campaigns", body=b"{not json"
            )
            assert r.status == 400
            return None

        with_service(tmp_path, body)

    def test_bad_seeds_are_400(self, tmp_path):
        async def body(service, client):
            for seeds in ([], [1, 1], ["x"], [True]):
                r = await client.request(
                    "POST", "/v1/campaigns", body=tiny(seeds=seeds)
                )
                assert r.status == 400, seeds
            return None

        with_service(tmp_path, body)

    def test_unknown_routes_and_ids_are_404(self, tmp_path):
        async def body(service, client):
            for path in (
                "/v1/nope",
                "/v1/jobs/job-missing",
                "/v1/runs/campaign-missing",
                "/v1/runs/campaign-missing/result",
            ):
                r = await client.request("GET", path)
                assert r.status == 404, path
            with pytest.raises(ConnectionError):
                await stream_to_end(client, "job-missing")
            return None

        with_service(tmp_path, body)


class TestAdmin:
    def test_gc_dry_run_reports_without_deleting(self, tmp_path):
        async def body(service, client):
            r = await client.request("POST", "/v1/campaigns", body=tiny())
            await stream_to_end(client, r.json()["id"])
            orphan = service.store.put_blob(b"orphaned bytes")
            r = await client.request("POST", "/v1/admin/gc?dry_run=1")
            dry = r.json()
            assert dry["dry_run"] is True
            assert orphan in dry["removed_sample"]
            assert service.store.blobs.has(orphan)  # nothing deleted
            r = await client.request("POST", "/v1/admin/gc")
            real = r.json()
            assert real["dry_run"] is False
            assert orphan in real["removed_sample"]
            assert not service.store.blobs.has(orphan)
            return None

        with_service(tmp_path, body)

    def test_read_cache_serves_repeats_and_can_be_disabled(self, tmp_path):
        async def body(service, client):
            r = await client.request("POST", "/v1/campaigns", body=tiny())
            await stream_to_end(client, r.json()["id"])
            run_id = r.json()["runs"][0]["run_id"]
            first = await client.request("GET", f"/v1/runs/{run_id}/result")
            second = await client.request("GET", f"/v1/runs/{run_id}/result")
            assert first.body == second.body
            stats = service.cache.stats()
            assert stats["hits"] >= 1
            r = await client.request(
                "POST", "/v1/admin/cache", body={"enabled": False}
            )
            assert r.json()["enabled"] is False
            assert r.json()["entries"] == 0  # disabling clears
            third = await client.request("GET", f"/v1/runs/{run_id}/result")
            assert third.status == 200 and third.body == first.body
            r = await client.request(
                "POST", "/v1/admin/cache", body={"enabled": True}
            )
            assert r.json()["enabled"] is True
            return None

        with_service(tmp_path, body)

    def test_draining_service_refuses_submissions_503(self, tmp_path):
        async def body(service, client):
            service.draining = True
            r = await client.request("POST", "/v1/campaigns", body=tiny())
            assert r.status == 503
            r = await client.request("GET", "/v1/healthz")
            assert r.json()["status"] == "draining"
            return None

        with_service(tmp_path, body)

    def test_metrics_track_routes_and_latency(self, tmp_path):
        async def body(service, client):
            await client.request("GET", "/v1/healthz")
            await client.request("GET", "/v1/healthz")
            m = (await client.request("GET", "/v1/metrics")).json()
            health = m["routes"]["GET /v1/healthz"]
            assert health["count"] == 2
            assert health["p50_ms"] is not None
            assert health["errors"] == 0
            return None

        with_service(tmp_path, body)
