"""Tests for the mining/tx processes and the relay tracker."""

from __future__ import annotations

import pytest

from repro.bitcoin import (
    MiningProcess,
    RelayTracker,
    TransactionGenerator,
)
from repro.bitcoin.relay import relay_order
from repro.errors import ScenarioError

from .conftest import build_small_network


class TestMiningProcess:
    def test_blocks_extend_best_chain(self, sim):
        nodes = build_small_network(sim, 8)
        sim.run_for(60.0)
        mining = MiningProcess(sim, lambda: nodes, block_interval=30.0)
        mining.start()
        sim.run_for(600.0)
        assert mining.blocks_mined >= 5
        heights = [mined.block.height for mined in mining.history]
        assert heights == list(range(1, len(heights) + 1))

    def test_network_follows_miner(self, sim):
        nodes = build_small_network(sim, 8)
        sim.run_for(60.0)
        mining = MiningProcess(sim, lambda: nodes, block_interval=60.0)
        mining.start()
        sim.run_for(900.0)
        assert all(node.chain.height == mining.best_height for node in nodes)

    def test_stop_halts_production(self, sim):
        nodes = build_small_network(sim, 4)
        mining = MiningProcess(sim, lambda: nodes, block_interval=10.0)
        mining.start()
        sim.run_for(100.0)
        count = mining.blocks_mined
        mining.stop()
        sim.run_for(200.0)
        assert mining.blocks_mined == count

    def test_premine_builds_history(self, sim):
        mining = MiningProcess(sim, lambda: [], block_interval=10.0)
        blocks = mining.premine(50)
        assert len(blocks) == 50
        assert mining.best_height == 50
        assert [b.height for b in blocks] == list(range(1, 51))
        # Parent links form a chain from genesis.
        assert blocks[0].prev_id == 0
        for parent, child in zip(blocks, blocks[1:]):
            assert child.prev_id == parent.block_id

    def test_premine_after_mining_rejected(self, sim):
        nodes = build_small_network(sim, 4)
        sim.run_for(30.0)
        mining = MiningProcess(sim, lambda: nodes, block_interval=5.0)
        mining.start()
        sim.run_for(60.0)
        assert mining.blocks_mined > 0
        with pytest.raises(ScenarioError):
            mining.premine(10)

    def test_blocks_confirm_mempool_txs(self, sim):
        nodes = build_small_network(sim, 6)
        sim.run_for(60.0)
        mining = MiningProcess(
            sim, lambda: nodes, block_interval=60.0, txs_per_block=5
        )
        txgen = TransactionGenerator(sim, lambda: nodes, tx_rate=0.5)
        mining.start()
        txgen.start()
        sim.run_for(900.0)
        confirmed = [m for m in mining.history if m.block.txids]
        assert confirmed, "expected at least one non-empty block"

    def test_invalid_interval(self, sim):
        with pytest.raises(ScenarioError):
            MiningProcess(sim, lambda: [], block_interval=0.0)

    def test_stalled_network_mines_nothing(self, sim):
        mining = MiningProcess(sim, lambda: [], block_interval=5.0)
        mining.start()
        sim.run_for(60.0)
        assert mining.blocks_mined == 0


class TestTransactionGenerator:
    def test_generates_at_rate(self, sim):
        nodes = build_small_network(sim, 4)
        sim.run_for(30.0)
        txgen = TransactionGenerator(sim, lambda: nodes, tx_rate=1.0)
        txgen.start()
        sim.run_for(300.0)
        assert 200 < txgen.generated < 420  # Poisson around 300

    def test_invalid_rate(self, sim):
        with pytest.raises(ScenarioError):
            TransactionGenerator(sim, lambda: [], tx_rate=0.0)


class TestRelayTracker:
    def test_records_first_seen_once(self):
        tracker = RelayTracker()
        tracker.saw(1, "block", 10.0)
        tracker.saw(1, "block", 20.0)
        assert tracker.records("block")[0].first_seen == 10.0

    def test_relaying_time_is_last_minus_first(self):
        tracker = RelayTracker()
        tracker.saw(1, "block", 10.0)
        tracker.enqueued(1)
        tracker.relayed(1, 11.0)
        tracker.relayed(1, 14.5)
        assert tracker.relaying_times("block") == [4.5]

    def test_cutoff_excludes_late_serving(self):
        tracker = RelayTracker()
        tracker.saw(1, "block", 10.0)
        tracker.enqueued(1)
        tracker.relayed(1, 12.0)
        tracker.relayed(1, 500.0)  # an IBD request hours later
        assert tracker.relaying_times("block", cutoff=60.0) == [2.0]
        assert tracker.relaying_times("block", cutoff=1000.0) == [490.0]

    def test_unenqueued_items_excluded(self):
        tracker = RelayTracker()
        tracker.saw(1, "block", 10.0)
        tracker.relayed(1, 11.0)
        assert tracker.relaying_times("block") == []

    def test_kind_filter(self):
        tracker = RelayTracker()
        tracker.saw(1, "block", 0.0)
        tracker.saw(2, "tx", 0.0)
        assert len(tracker.records("block")) == 1
        assert len(tracker.records("tx")) == 1
        assert len(tracker.records()) == 2

    def test_relayed_unknown_item_ignored(self):
        tracker = RelayTracker()
        tracker.relayed(99, 5.0)
        assert len(tracker) == 0


class TestRelayOrder:
    class _FakePeer:
        def __init__(self, is_inbound):
            self.is_inbound = is_inbound

    def test_baseline_preserves_order(self):
        peers = [self._FakePeer(True), self._FakePeer(False), self._FakePeer(True)]
        assert relay_order(peers, outbound_first=False) == peers

    def test_policy_puts_outbound_first(self):
        peers = [self._FakePeer(True), self._FakePeer(False), self._FakePeer(True)]
        ordered = relay_order(peers, outbound_first=True)
        assert [p.is_inbound for p in ordered] == [False, True, True]

    def test_policy_sort_is_stable(self):
        a, b = self._FakePeer(False), self._FakePeer(False)
        c, d = self._FakePeer(True), self._FakePeer(True)
        ordered = relay_order([c, a, d, b], outbound_first=True)
        assert ordered == [a, b, c, d]
